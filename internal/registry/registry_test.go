package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"harassrepro/internal/active"
	"harassrepro/internal/annotate"
	"harassrepro/internal/features"
	"harassrepro/internal/model"
	"harassrepro/internal/tokenize"
)

// tinySaver returns a save func that writes a complete, valid,
// LoadDetector-loadable model directory without training a pipeline:
// a micro WordPiece vocabulary plus two tiny classifiers in a
// 16-bucket feature space. seed perturbs the training labels so
// different "generations" score differently.
func tinySaver(t testing.TB, seed uint64) func(dir string) error {
	t.Helper()
	vocab := tokenize.Train([]string{
		"mass report this channel now",
		"dropping her home address tonight",
		"everyone raid the stream",
		"post his dox in the thread",
	}, tokenize.TrainerConfig{VocabSize: 64})
	examples := make([]model.Example, 0, 8)
	for i := 0; i < 8; i++ {
		examples = append(examples, model.Example{
			X: features.Vector{Indices: []uint32{uint32(i % 16), uint32((i + 3) % 16)}, Values: []float64{1, 1}},
			Y: (uint64(i)+seed)%3 == 0,
		})
	}
	dox, err := model.TrainLogReg(examples, model.LogRegConfig{Buckets: 16, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	cth, err := model.TrainLogReg(examples, model.LogRegConfig{Buckets: 16, Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	return func(dir string) error {
		if err := vocab.SaveFile(filepath.Join(dir, "vocab.txt")); err != nil {
			return err
		}
		if err := dox.SaveFile(filepath.Join(dir, "dox.model")); err != nil {
			return err
		}
		if err := cth.SaveFile(filepath.Join(dir, "cth.model")); err != nil {
			return err
		}
		meta := `{"version":1,"buckets":16,"dox_text_len":512,"cth_text_len":128,
"dox_thresholds":{"boards":0.9},"cth_thresholds":{"boards":0.8}}`
		return os.WriteFile(filepath.Join(dir, "meta.json"), []byte(meta), 0o644)
	}
}

func mustCommit(t *testing.T, r *Registry, seed uint64) uint64 {
	t.Helper()
	gen, err := r.Commit(Entry{Seed: seed, Source: "test"}, tinySaver(t, seed))
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

func TestRegistryCommitActivateRollback(t *testing.T) {
	dir := t.TempDir()
	r, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}

	g1 := mustCommit(t, r, 1)
	if g1 != 1 {
		t.Fatalf("first generation = %d, want 1", g1)
	}
	if r.Active() != 0 {
		t.Fatalf("commit must not activate: active = %d", r.Active())
	}
	if err := r.Activate(g1); err != nil {
		t.Fatal(err)
	}
	if r.Active() != g1 {
		t.Fatalf("active = %d, want %d", r.Active(), g1)
	}

	g2 := mustCommit(t, r, 2)
	if g2 != 2 {
		t.Fatalf("second generation = %d, want 2", g2)
	}
	if err := r.Activate(g2); err != nil {
		t.Fatal(err)
	}
	if r.Active() != g2 || r.Previous() != g1 {
		t.Fatalf("active/previous = %d/%d, want %d/%d", r.Active(), r.Previous(), g2, g1)
	}

	// Both generations load independently.
	for _, g := range []uint64{g1, g2} {
		d, err := r.Load(g)
		if err != nil {
			t.Fatalf("load generation %d: %v", g, err)
		}
		if d.Buckets() != 16 {
			t.Fatalf("generation %d buckets = %d", g, d.Buckets())
		}
	}

	back, err := r.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if back != g1 || r.Active() != g1 || r.Previous() != g2 {
		t.Fatalf("rollback landed on %d (active %d, previous %d)", back, r.Active(), r.Previous())
	}

	// State survives reopen byte-for-byte.
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Active() != g1 || r2.Previous() != g2 {
		t.Fatalf("reopened active/previous = %d/%d", r2.Active(), r2.Previous())
	}
	if len(r2.Entries()) != 2 {
		t.Fatalf("reopened entries = %d", len(r2.Entries()))
	}
	rep := r2.Recovery()
	if len(rep.Quarantined) != 0 || len(rep.Orphans) != 0 {
		t.Fatalf("clean reopen reported recovery: %+v", rep)
	}
	if _, _, err := r2.LoadActive(); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryCommitRejectsBrokenSave(t *testing.T) {
	dir := t.TempDir()
	r, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A save that leaves an incomplete directory must not commit, and
	// the failed generation number is never reused for different bytes
	// (counter only moves on success).
	_, err = r.Commit(Entry{Seed: 9}, func(gdir string) error {
		return os.WriteFile(filepath.Join(gdir, "vocab.txt"), []byte("a\nb\n"), 0o644)
	})
	if err == nil {
		t.Fatal("Commit accepted an incomplete model directory")
	}
	if !strings.Contains(err.Error(), "dox.model") {
		t.Errorf("error does not name the missing artifact: %v", err)
	}
	if got := len(r.Entries()); got != 0 {
		t.Fatalf("failed commit left %d entries", got)
	}
	g, err := r.Commit(Entry{Seed: 10}, tinySaver(t, 10))
	if err != nil {
		t.Fatal(err)
	}
	if g != 1 {
		t.Fatalf("generation after failed commit = %d, want 1", g)
	}
	// Reopen sees no debris from the failed commit.
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep := r2.Recovery(); len(rep.Orphans) != 0 {
		t.Fatalf("failed commit left orphans: %v", rep.Orphans)
	}
}

func TestRegistryCrashMidPromoteRecovers(t *testing.T) {
	dir := t.TempDir()
	r, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	g1 := mustCommit(t, r, 1)
	if err := r.Activate(g1); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash between writing generation 2's files and
	// committing the manifest: the directory exists, the manifest
	// never heard of it.
	orphan := filepath.Join(dir, genDirName(2))
	if err := os.MkdirAll(orphan, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := tinySaver(t, 2)(orphan); err != nil {
		t.Fatal(err)
	}

	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Active() != g1 {
		t.Fatalf("recovered active = %d, want last committed %d", r2.Active(), g1)
	}
	rep := r2.Recovery()
	if len(rep.Orphans) != 1 || rep.Orphans[0] != genDirName(2) {
		t.Fatalf("orphans = %v, want [%s]", rep.Orphans, genDirName(2))
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, genDirName(2))); err != nil {
		t.Fatalf("orphan not quarantined: %v", err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan still in place: %v", err)
	}
	// The identity is not reused with different content silently: the
	// next commit takes generation 2 again only because the manifest
	// counter never advanced, and it validates fresh.
	g2, err := r2.Commit(Entry{Seed: 2}, tinySaver(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if g2 != 2 {
		t.Fatalf("post-recovery generation = %d", g2)
	}
	if _, err := r2.Load(g2); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryQuarantinesCorruptCommittedGeneration(t *testing.T) {
	dir := t.TempDir()
	r, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	g1 := mustCommit(t, r, 1)
	g2 := mustCommit(t, r, 2)
	if err := r.Activate(g1); err != nil {
		t.Fatal(err)
	}
	if err := r.Activate(g2); err != nil {
		t.Fatal(err)
	}

	// Corrupt the active generation's classifier on disk.
	victim := filepath.Join(dir, genDirName(g2), "dox.model")
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victim, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep := r2.Recovery()
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != g2 {
		t.Fatalf("quarantined = %v, want [%d]", rep.Quarantined, g2)
	}
	if r2.Active() != g1 || rep.ActiveReset != g1 {
		t.Fatalf("active = %d (reset %d), want fallback to %d", r2.Active(), rep.ActiveReset, g1)
	}
	if _, ok := r2.Entry(g2); ok {
		t.Fatal("corrupt generation still committed")
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, genDirName(g2))); err != nil {
		t.Fatalf("corrupt generation not quarantined: %v", err)
	}
	// Repair is durable: a second open is clean.
	r3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep := r3.Recovery(); len(rep.Quarantined) != 0 {
		t.Fatalf("repair not committed: %+v", rep)
	}
	// Generation numbers are never reused after quarantine.
	g3, err := r3.Commit(Entry{Seed: 3}, tinySaver(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	if g3 != g2+1 {
		t.Fatalf("post-quarantine generation = %d, want %d", g3, g2+1)
	}
}

func TestManifestRejectsDamage(t *testing.T) {
	cases := map[string]string{
		"empty":            ``,
		"garbage":          `{"version":1,` + "\x00\x01",
		"wrong version":    `{"version":7,"counter":0,"active":0,"previous":0,"entries":[]}`,
		"unknown field":    `{"version":1,"counter":0,"active":0,"previous":0,"entries":[],"extra":1}`,
		"dup generations":  `{"version":1,"counter":2,"active":0,"previous":0,"entries":[{"generation":2,"seed":1},{"generation":2,"seed":1}]}`,
		"unsorted":         `{"version":1,"counter":2,"active":0,"previous":0,"entries":[{"generation":2,"seed":1},{"generation":1,"seed":1}]}`,
		"counter behind":   `{"version":1,"counter":1,"active":0,"previous":0,"entries":[{"generation":2,"seed":1}]}`,
		"active missing":   `{"version":1,"counter":1,"active":3,"previous":0,"entries":[{"generation":1,"seed":1}]}`,
		"previous missing": `{"version":1,"counter":1,"active":1,"previous":3,"entries":[{"generation":1,"seed":1}]}`,
		"active==previous": `{"version":1,"counter":1,"active":1,"previous":1,"entries":[{"generation":1,"seed":1}]}`,
		"generation zero":  `{"version":1,"counter":1,"active":0,"previous":0,"entries":[{"generation":0,"seed":1}]}`,
		"trailing data":    `{"version":1,"counter":0,"active":0,"previous":0,"entries":[]}{"version":1}`,
	}
	for label, data := range cases {
		if _, err := decodeManifest([]byte(data)); err == nil {
			t.Errorf("%s: decodeManifest accepted damage", label)
		}
	}
	// Open over a torn manifest fails loudly rather than serving.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(`{"version":1,"coun`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a torn manifest")
	}
}

func TestOpenOrCreate(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenOrCreate(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Active() != 0 || len(r.Entries()) != 0 {
		t.Fatalf("fresh registry not empty: active %d, %d entries", r.Active(), len(r.Entries()))
	}
	g := mustCommit(t, r, 4)
	if err := r.Activate(g); err != nil {
		t.Fatal(err)
	}
	r2, err := OpenOrCreate(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Active() != g {
		t.Fatalf("reopened active = %d, want %d", r2.Active(), g)
	}
	if _, err := Create(dir); err == nil {
		t.Fatal("Create clobbered an existing registry")
	}
}

func TestRetrainProducesPromotableCandidate(t *testing.T) {
	dir := t.TempDir()
	r, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	g1 := mustCommit(t, r, 1)
	if err := r.Activate(g1); err != nil {
		t.Fatal(err)
	}
	base, _, err := r.LoadActive()
	if err != nil {
		t.Fatal(err)
	}

	var fb []Feedback
	texts := []string{
		"everyone mass report his channel and make him pay",
		"dropping her home address tonight stay tuned",
		"this is a perfectly normal gardening discussion",
		"the weather is nice today in the city",
		"post his dox in the thread now",
		"raid the stream at nine everyone join",
	}
	for i := 0; i < 24; i++ {
		fb = append(fb, Feedback{
			ID:       fmt.Sprintf("fb-%03d", i),
			Platform: "boards",
			Text:     texts[i%len(texts)],
			Task:     annotate.TaskCTH,
			Label:    i%len(texts) < 2 || i%len(texts) >= 4,
		})
	}

	var progressed int
	cand, res, err := Retrain(base, fb, RetrainConfig{
		Seed:     42,
		Progress: func(st active.IterationStats) { progressed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Task != annotate.TaskCTH {
		t.Fatalf("retrained task = %v, want CTH (dominant in feedback)", res.Task)
	}
	if res.Feedback != len(fb) || res.Labelled < len(fb) {
		t.Fatalf("feedback/labelled = %d/%d", res.Feedback, res.Labelled)
	}
	if len(res.History) == 0 || progressed != len(res.History) {
		t.Fatalf("progress callback fired %d times for %d iterations", progressed, len(res.History))
	}
	for plat, th := range res.Thresholds {
		if th <= 0 || th > 1 {
			t.Fatalf("recalibrated threshold for %q out of range: %v", plat, th)
		}
	}
	if cand.Buckets() != base.Buckets() {
		t.Fatalf("candidate feature space %d != base %d", cand.Buckets(), base.Buckets())
	}
	// The retrain is deterministic: same feedback + seed = identical
	// candidate behaviour.
	cand2, res2, err := Retrain(base, fb, RetrainConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Labelled != res.Labelled || len(res2.History) != len(res.History) {
		t.Fatalf("retrain not deterministic: %+v vs %+v", res2, res)
	}
	for _, text := range texts {
		a := cand.Score(annotate.TaskCTH, text)
		b := cand2.Score(annotate.TaskCTH, text)
		if a != b {
			t.Fatalf("candidate scores differ across identical retrains: %v vs %v", a, b)
		}
		if a < 0 || a > 1 {
			t.Fatalf("candidate score out of range: %v", a)
		}
	}

	// The candidate commits and promotes like any trained detector.
	g2, err := r.Commit(Entry{Seed: 42, Source: "retrain"}, cand.Save)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Activate(g2); err != nil {
		t.Fatal(err)
	}
	reloaded, gen, err := r.LoadActive()
	if err != nil {
		t.Fatal(err)
	}
	if gen != g2 {
		t.Fatalf("active = %d, want %d", gen, g2)
	}
	if got, want := reloaded.TaskThresholds(annotate.TaskCTH), cand.TaskThresholds(annotate.TaskCTH); len(got) != len(want) {
		t.Fatalf("reloaded thresholds %v != candidate %v", got, want)
	}
	// The base detector was not mutated by the retrain.
	if base.Buckets() != 16 {
		t.Fatalf("base detector mutated: buckets %d", base.Buckets())
	}
}
