package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"harassrepro/internal/core"
)

// Registry is an on-disk versioned model store. All methods are safe
// for concurrent use; mutations serialise on an internal lock and
// commit through the manifest, so a crash leaves either the previous
// state or the new one.
type Registry struct {
	dir string

	mu       sync.Mutex
	man      *manifest
	recovery RecoveryReport
}

// RecoveryReport describes what Open had to repair.
type RecoveryReport struct {
	// Quarantined lists committed generations whose model directories
	// failed validation and were moved to quarantine/.
	Quarantined []uint64
	// Orphans lists uncommitted gen-* directories (a crash between a
	// generation's file writes and its manifest commit) moved to
	// quarantine/.
	Orphans []string
	// ActiveReset is the generation Active was reset to after the
	// previous active generation was quarantined (0 = no reset).
	ActiveReset uint64
}

// Create initialises an empty registry at dir (created if needed).
// It refuses a directory that already holds a manifest.
func Create(dir string) (*Registry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: create: %w", err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("registry: create: %s already holds a manifest", dir)
	}
	r := &Registry{dir: dir, man: &manifest{Version: manifestVer}}
	if err := r.commitManifest(); err != nil {
		return nil, err
	}
	return r, nil
}

// Open loads an existing registry, validating every committed
// generation's model directory. Damage is quarantined, never served:
// a committed generation that fails core.LoadDetector is moved into
// quarantine/ and dropped from the manifest (resetting Active to the
// newest surviving generation if it pointed at the damage), and
// uncommitted gen-* orphans left by a crash mid-commit are swept into
// quarantine/ as well. The repairs are committed before Open returns,
// and Recovery reports what happened.
func Open(dir string) (*Registry, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("registry: open: %w", err)
	}
	man, err := decodeManifest(data)
	if err != nil {
		return nil, fmt.Errorf("registry: open: %w", err)
	}
	r := &Registry{dir: dir, man: man}
	if err := r.recover(); err != nil {
		return nil, err
	}
	return r, nil
}

// OpenOrCreate opens dir as a registry, initialising it when empty.
func OpenOrCreate(dir string) (*Registry, error) {
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		if os.IsNotExist(err) {
			return Create(dir)
		}
		return nil, fmt.Errorf("registry: open: %w", err)
	}
	return Open(dir)
}

// recover validates committed generations and sweeps orphans.
func (r *Registry) recover() error {
	committed := map[string]uint64{}
	for _, e := range r.man.Entries {
		committed[genDirName(e.Generation)] = e.Generation
	}

	dirty := false
	// Committed generations must load; quarantine the ones that don't.
	for name, gen := range committed {
		if _, err := core.LoadDetector(filepath.Join(r.dir, name)); err != nil {
			if qerr := r.quarantine(name); qerr != nil {
				return qerr
			}
			r.man.drop(gen)
			r.recovery.Quarantined = append(r.recovery.Quarantined, gen)
			if r.man.Previous == gen {
				r.man.Previous = 0
			}
			if r.man.Active == gen {
				r.man.Active = 0
			}
			dirty = true
		}
	}
	sort.Slice(r.recovery.Quarantined, func(i, j int) bool {
		return r.recovery.Quarantined[i] < r.recovery.Quarantined[j]
	})
	// If the active generation was damaged, fall back to the newest
	// surviving one so the service keeps a model to serve.
	if r.man.Active == 0 && dirty && len(r.man.Entries) > 0 {
		r.man.Active = r.man.Entries[len(r.man.Entries)-1].Generation
		if r.man.Previous == r.man.Active {
			r.man.Previous = 0
		}
		r.recovery.ActiveReset = r.man.Active
	}

	// Uncommitted gen-* directories are crash debris from a commit
	// that never reached the manifest.
	ents, err := os.ReadDir(r.dir)
	if err != nil {
		return fmt.Errorf("registry: open: %w", err)
	}
	for _, de := range ents {
		name := de.Name()
		if !de.IsDir() || !strings.HasPrefix(name, "gen-") {
			continue
		}
		if _, ok := committed[name]; ok {
			continue
		}
		if err := r.quarantine(name); err != nil {
			return err
		}
		r.recovery.Orphans = append(r.recovery.Orphans, name)
	}
	sort.Strings(r.recovery.Orphans)

	if dirty {
		if err := r.commitManifest(); err != nil {
			return err
		}
	}
	return nil
}

// quarantine moves dir/name into dir/quarantine/, renaming on
// collision so repeated crashes never clobber evidence.
func (r *Registry) quarantine(name string) error {
	qdir := filepath.Join(r.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return fmt.Errorf("registry: quarantine: %w", err)
	}
	dst := filepath.Join(qdir, name)
	for i := 1; ; i++ {
		if _, err := os.Stat(dst); os.IsNotExist(err) {
			break
		}
		dst = filepath.Join(qdir, fmt.Sprintf("%s.%d", name, i))
	}
	if err := os.Rename(filepath.Join(r.dir, name), dst); err != nil {
		return fmt.Errorf("registry: quarantine: %w", err)
	}
	syncDir(r.dir)
	return nil
}

// Commit writes a new model generation: save is called with the fresh
// generation directory and must leave a complete SaveModels layout
// there (core.Detector.Save or Pipeline.SaveModels both qualify). The
// registry fsyncs the written files, validates the directory by
// loading it, and only then commits the manifest — a crash anywhere
// before that final rename leaves an orphan directory that the next
// Open sweeps to quarantine, never a committed broken generation. The
// new generation is committed but NOT active; call Activate to serve
// it.
func (r *Registry) Commit(info Entry, save func(dir string) error) (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()

	gen := r.man.Counter + 1
	name := genDirName(gen)
	gdir := filepath.Join(r.dir, name)
	if err := os.MkdirAll(gdir, 0o755); err != nil {
		return 0, fmt.Errorf("registry: commit: %w", err)
	}
	fail := func(err error) (uint64, error) {
		os.RemoveAll(gdir) // best-effort: an orphan would be swept anyway
		return 0, err
	}
	if err := save(gdir); err != nil {
		return fail(fmt.Errorf("registry: commit generation %d: %w", gen, err))
	}
	if err := fsyncTree(gdir); err != nil {
		return fail(fmt.Errorf("registry: commit generation %d: %w", gen, err))
	}
	if _, err := core.LoadDetector(gdir); err != nil {
		return fail(fmt.Errorf("registry: commit generation %d: saved model does not validate: %w", gen, err))
	}
	syncDir(r.dir)

	info.Generation = gen
	r.man.Counter = gen
	r.man.Entries = append(r.man.Entries, info)
	if err := r.commitManifest(); err != nil {
		r.man.Counter = gen - 1
		r.man.drop(gen)
		return fail(err)
	}
	return gen, nil
}

// Activate promotes a committed generation to active, keeping the
// displaced generation as the rollback target. One manifest rename
// makes the promotion atomic and exactly-once.
func (r *Registry) Activate(gen uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.man.entry(gen) == nil {
		return fmt.Errorf("registry: activate: generation %d not committed", gen)
	}
	if r.man.Active == gen {
		return nil
	}
	prevActive, prevPrev := r.man.Active, r.man.Previous
	r.man.Previous = r.man.Active
	r.man.Active = gen
	if err := r.commitManifest(); err != nil {
		r.man.Active, r.man.Previous = prevActive, prevPrev
		return err
	}
	return nil
}

// Rollback swaps the active generation with the previous one.
func (r *Registry) Rollback() (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.man.Previous == 0 {
		return 0, fmt.Errorf("registry: rollback: no previous generation")
	}
	prevActive, prevPrev := r.man.Active, r.man.Previous
	r.man.Active, r.man.Previous = r.man.Previous, r.man.Active
	if err := r.commitManifest(); err != nil {
		r.man.Active, r.man.Previous = prevActive, prevPrev
		return 0, err
	}
	return r.man.Active, nil
}

// Load reads a committed generation's detector.
func (r *Registry) Load(gen uint64) (*core.Detector, error) {
	r.mu.Lock()
	e := r.man.entry(gen)
	r.mu.Unlock()
	if e == nil {
		return nil, fmt.Errorf("registry: load: generation %d not committed", gen)
	}
	return core.LoadDetector(filepath.Join(r.dir, genDirName(gen)))
}

// LoadActive reads the active generation's detector.
func (r *Registry) LoadActive() (*core.Detector, uint64, error) {
	gen := r.Active()
	if gen == 0 {
		return nil, 0, fmt.Errorf("registry: no active generation")
	}
	d, err := r.Load(gen)
	return d, gen, err
}

// Active returns the active generation (0 = none).
func (r *Registry) Active() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.man.Active
}

// Previous returns the rollback target generation (0 = none).
func (r *Registry) Previous() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.man.Previous
}

// Entry returns the committed entry for gen, if present.
func (r *Registry) Entry(gen uint64) (Entry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.man.entry(gen); e != nil {
		return *e, true
	}
	return Entry{}, false
}

// Entries lists the committed generations in ascending order.
func (r *Registry) Entries() []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Entry(nil), r.man.Entries...)
}

// GenDir returns the on-disk directory of a generation.
func (r *Registry) GenDir(gen uint64) string {
	return filepath.Join(r.dir, genDirName(gen))
}

// Dir returns the registry root.
func (r *Registry) Dir() string { return r.dir }

// Recovery reports what the opening scan had to repair.
func (r *Registry) Recovery() RecoveryReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recovery
}

// commitManifest atomically replaces the manifest (caller holds mu or
// has exclusive access during construction).
func (r *Registry) commitManifest() error {
	data, err := encodeManifest(r.man)
	if err != nil {
		return err
	}
	tmp := filepath.Join(r.dir, manifestName+".tmp")
	if err := writeFileSync(tmp, data); err != nil {
		return fmt.Errorf("registry: manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(r.dir, manifestName)); err != nil {
		return fmt.Errorf("registry: manifest: %w", err)
	}
	syncDir(r.dir)
	return nil
}

// writeFileSync writes data and fsyncs before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir best-effort fsyncs a directory so renames are durable.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync() //nolint:errcheck // advisory on platforms without dir fsync
		d.Close()
	}
}

// fsyncTree fsyncs every regular file under dir plus dir itself, so a
// generation's contents are durable before the manifest names them.
func fsyncTree(dir string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, de := range ents {
		if de.IsDir() {
			continue
		}
		f, err := os.Open(filepath.Join(dir, de.Name()))
		if err != nil {
			return err
		}
		serr := f.Sync()
		f.Close()
		if serr != nil {
			return serr
		}
	}
	syncDir(dir)
	return nil
}
