package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	c1 := root.Split("alpha")
	c2 := root.Split("beta")
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("children with different labels produced identical first output")
	}
	// Splitting must not advance the parent.
	r1 := New(7)
	r1.Split("anything")
	r2 := New(7)
	if r1.Uint64() != r2.Uint64() {
		t.Fatal("Split advanced the parent stream")
	}
}

func TestSplitNStability(t *testing.T) {
	root := New(9)
	a := root.SplitN("doc", 5).Uint64()
	b := root.SplitN("doc", 5).Uint64()
	c := root.SplitN("doc", 6).Uint64()
	if a != b {
		t.Fatal("SplitN with identical args not stable")
	}
	if a == c {
		t.Fatal("SplitN with different index collided")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	s := New(13)
	for i := 0; i < 1000; i++ {
		v := s.IntRange(-3, 3)
		if v < -3 || v > 3 {
			t.Fatalf("IntRange(-3,3) = %d", v)
		}
	}
	if got := s.IntRange(5, 5); got != 5 {
		t.Fatalf("IntRange(5,5) = %d, want 5", got)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(17)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate = %v", p)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(19)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(23)
	for _, mean := range []float64{0.5, 3, 20, 100} {
		const n = 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += s.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Fatalf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
	if got := s.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	if got := s.Poisson(-1); got != 0 {
		t.Fatalf("Poisson(-1) = %d, want 0", got)
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(29)
	p := 0.25
	const n = 50000
	sum := 0
	for i := 0; i < n; i++ {
		sum += s.Geometric(p)
	}
	got := float64(sum) / n
	want := (1 - p) / p // mean number of failures before first success
	if math.Abs(got-want) > 0.1 {
		t.Fatalf("Geometric(%v) mean = %v, want %v", p, got, want)
	}
	if got := s.Geometric(1); got != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", got)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(31)
	for i := 0; i < 1000; i++ {
		if v := s.LogNormal(1, 2); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}

func TestPick(t *testing.T) {
	s := New(37)
	items := []string{"a", "b", "c"}
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		counts[Pick(s, items)]++
	}
	for _, it := range items {
		if counts[it] < 800 {
			t.Fatalf("Pick heavily skewed: %v", counts)
		}
	}
}

func TestPickNDistinct(t *testing.T) {
	s := New(41)
	items := []int{1, 2, 3, 4, 5}
	got := PickN(s, items, 3)
	if len(got) != 3 {
		t.Fatalf("PickN returned %d items", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("PickN returned duplicate %d", v)
		}
		seen[v] = true
	}
	if got := PickN(s, items, 99); len(got) != len(items) {
		t.Fatalf("PickN over-request returned %d items", len(got))
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	err := quick.Check(func(seed uint64, raw []int) bool {
		s := New(seed)
		cp := make([]int, len(raw))
		copy(cp, raw)
		Shuffle(s, cp)
		before := map[int]int{}
		after := map[int]int{}
		for _, v := range raw {
			before[v]++
		}
		for _, v := range cp {
			after[v]++
		}
		if len(before) != len(after) {
			return false
		}
		for k, v := range before {
			if after[k] != v {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestWeightedDistribution(t *testing.T) {
	s := New(43)
	w := NewWeighted([]float64{1, 0, 3})
	counts := make([]int, 3)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[w.Sample(s)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index sampled %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.3 {
		t.Fatalf("weighted ratio = %v, want ~3", ratio)
	}
}

func TestWeightedPanics(t *testing.T) {
	cases := [][]float64{nil, {}, {0, 0}, {-1, 2}, {math.NaN()}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewWeighted(%v) did not panic", c)
				}
			}()
			NewWeighted(c)
		}()
	}
}

func TestSampleWeightedOneShot(t *testing.T) {
	s := New(47)
	for i := 0; i < 100; i++ {
		if got := SampleWeighted(s, []float64{0, 1, 0}); got != 1 {
			t.Fatalf("SampleWeighted picked zero-weight index %d", got)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkWeightedSample(b *testing.B) {
	s := New(1)
	w := NewWeighted([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.Sample(s)
	}
}
