// Package randx provides deterministic, splittable pseudo-random sources
// and sampling utilities used throughout the reproduction.
//
// Every stochastic component in the library takes an explicit *randx.Source
// so that an entire end-to-end reproduction is bit-reproducible for a given
// root seed. Sources are cheap to create and may be split into independent
// child streams keyed by a label, so that adding randomness consumption in
// one subsystem does not perturb another.
package randx

import (
	"math"
	"sort"
)

// FNV-1a, inlined so that Split/SplitN on scoring hot paths do not
// allocate a hash.Hash64 per call. The constants and byte order match
// hash/fnv exactly: child streams derived before and after the inlining
// are bit-identical.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// Source is a deterministic pseudo-random source based on the SplitMix64
// generator. It is intentionally minimal: the reproduction needs speed and
// determinism, not cryptographic strength.
//
// A Source is not safe for concurrent use; Split off independent child
// sources for concurrent consumers.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split derives an independent child source from s keyed by label.
// Splitting does not advance s, so the child stream depends only on the
// parent seed and the label.
func (s *Source) Split(label string) *Source {
	return &Source{state: s.splitState(label)}
}

// SplitN derives an independent child source keyed by label and an index,
// for per-item streams (for example one stream per generated document).
func (s *Source) SplitN(label string, n int) *Source {
	src := s.SplitNVal(label, n)
	return &src
}

// SplitNVal is SplitN returning the child by value, for hot paths that
// derive one short-lived stream per document and must not allocate.
func (s *Source) SplitNVal(label string, n int) Source {
	h := fnvString(fnvOffset64, label)
	v := uint64(n)
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(v >> (8 * i)))
		h *= fnvPrime64
	}
	return Source{state: s.state ^ (h | 1)}
}

func (s *Source) splitState(label string) uint64 {
	return s.state ^ (fnvString(fnvOffset64, label) | 1)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling would be overkill here;
	// modulo bias is negligible for the n values used (< 2^32).
	return int(s.Uint64() % uint64(n))
}

// IntRange returns a uniformly distributed int in [lo, hi]. It panics if
// hi < lo.
func (s *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("randx: IntRange called with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Box–Muller transform.
func (s *Source) NormFloat64() float64 {
	for {
		u1 := s.Float64()
		if u1 == 0 {
			continue
		}
		u2 := s.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// LogNormal returns a log-normally distributed float64 whose underlying
// normal has the given mu and sigma.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.NormFloat64())
}

// Poisson returns a Poisson-distributed int with the given mean, using
// Knuth's algorithm for small means and a normal approximation above 64.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		n := int(math.Round(mean + math.Sqrt(mean)*s.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Geometric returns a geometrically distributed int >= 0 with success
// probability p (number of failures before the first success).
func (s *Source) Geometric(p float64) int {
	if p <= 0 || p >= 1 {
		if p >= 1 {
			return 0
		}
		panic("randx: Geometric called with p <= 0")
	}
	u := s.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Pick returns a uniformly chosen element of items. It panics if items is
// empty.
func Pick[T any](s *Source, items []T) T {
	return items[s.Intn(len(items))]
}

// PickN returns n distinct uniformly chosen elements of items, in random
// order. If n >= len(items) a shuffled copy of all items is returned.
func PickN[T any](s *Source, items []T, n int) []T {
	cp := make([]T, len(items))
	copy(cp, items)
	Shuffle(s, cp)
	if n > len(cp) {
		n = len(cp)
	}
	return cp[:n]
}

// Shuffle permutes items in place using the Fisher–Yates algorithm.
func Shuffle[T any](s *Source, items []T) {
	for i := len(items) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		items[i], items[j] = items[j], items[i]
	}
}

// Weighted samples an index from the (unnormalised, non-negative) weights.
// It panics if weights is empty or sums to zero.
type Weighted struct {
	cum []float64
}

// NewWeighted builds a weighted sampler over the given weights.
func NewWeighted(weights []float64) *Weighted {
	if len(weights) == 0 {
		panic("randx: NewWeighted with empty weights")
	}
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("randx: NewWeighted with negative or NaN weight")
		}
		total += w
		cum[i] = total
	}
	if total == 0 {
		panic("randx: NewWeighted with zero total weight")
	}
	return &Weighted{cum: cum}
}

// Sample draws one index proportionally to the configured weights.
func (w *Weighted) Sample(s *Source) int {
	total := w.cum[len(w.cum)-1]
	x := s.Float64() * total
	return sort.SearchFloat64s(w.cum, x+math.SmallestNonzeroFloat64)
}

// SampleWeighted is a convenience one-shot weighted sample.
func SampleWeighted(s *Source, weights []float64) int {
	return NewWeighted(weights).Sample(s)
}
