package stats

import (
	"math"
	"testing"
)

func TestWelchTTestKnown(t *testing.T) {
	// Hand-computable case: mean(a)=3, mean(b)=5, var(a)=var(b)=2.5, n=5.
	// se = sqrt(0.5+0.5) = 1, t = -2.
	// Welch df = (0.5+0.5)^2 / (2 * 0.25/4) = 8.
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{3, 4, 5, 6, 7}
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.T, -2, 1e-12) {
		t.Errorf("T = %v, want -2", res.T)
	}
	if !almostEqual(res.DF, 8, 1e-9) {
		t.Errorf("DF = %v, want 8", res.DF)
	}
	// Two-sided p for |t|=2, df=8 is 0.08051 (t tables).
	if !almostEqual(res.P, 0.08051, 2e-4) {
		t.Errorf("P = %v, want ~0.0805", res.P)
	}
	// Internal consistency: p == 2 * (1 - CDF(|t|)).
	if want := 2 * (1 - StudentTCDF(2, 8)); !almostEqual(res.P, want, 1e-12) {
		t.Errorf("P = %v inconsistent with CDF-derived %v", res.P, want)
	}
	if res.MeanDiff != -2 {
		t.Errorf("MeanDiff = %v, want -2", res.MeanDiff)
	}
}

func TestWelchTTestIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	res, err := WelchTTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.T != 0 || !almostEqual(res.P, 1, 1e-12) {
		t.Errorf("identical samples: T=%v P=%v", res.T, res.P)
	}
}

func TestWelchTTestZeroVariance(t *testing.T) {
	res, err := WelchTTest([]float64{5, 5, 5}, []float64{7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.T, -1) || res.P != 0 {
		t.Errorf("zero-variance distinct means: T=%v P=%v", res.T, res.P)
	}
}

func TestWelchTTestInsufficient(t *testing.T) {
	if _, err := WelchTTest([]float64{1}, []float64{2, 3}); err != ErrInsufficientData {
		t.Errorf("err = %v, want ErrInsufficientData", err)
	}
}

func TestChiSquareGOFUniform(t *testing.T) {
	// scipy.stats.chisquare([10, 20, 30]) -> stat=10.0, p=0.006737947.
	res, err := ChiSquareGOF([]float64{10, 20, 30}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Statistic, 10, 1e-12) {
		t.Errorf("stat = %v, want 10", res.Statistic)
	}
	if !almostEqual(res.P, 0.006737946999, 1e-9) {
		t.Errorf("p = %v, want 0.0067379", res.P)
	}
}

func TestChiSquareGOFExpected(t *testing.T) {
	res, err := ChiSquareGOF([]float64{16, 18, 16, 14, 12, 12}, []float64{16, 16, 16, 16, 16, 8})
	if err != nil {
		t.Fatal(err)
	}
	// scipy.stats.chisquare(f_obs, f_exp) -> stat=3.5, p=0.6233876.
	if !almostEqual(res.Statistic, 3.5, 1e-12) || !almostEqual(res.P, 0.62338763, 1e-7) {
		t.Errorf("res = %+v", res)
	}
}

func TestChiSquareGOFErrors(t *testing.T) {
	if _, err := ChiSquareGOF([]float64{5}, nil); err != ErrInsufficientData {
		t.Error("single category should error")
	}
	if _, err := ChiSquareGOF([]float64{5, 5}, []float64{5}); err != ErrInsufficientData {
		t.Error("length mismatch should error")
	}
	if _, err := ChiSquareGOF([]float64{5, 5}, []float64{0, 10}); err != ErrInsufficientData {
		t.Error("zero expected should error")
	}
}

func TestChiSquareIndependence(t *testing.T) {
	// Hand computation for [[10,20],[30,40]] without Yates correction:
	// expected = [[12,18],[28,42]];
	// stat = 4/12 + 4/18 + 4/28 + 4/42 = 0.79365079...
	res, err := ChiSquareIndependence([][]float64{{10, 20}, {30, 40}})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Statistic, 0.7936507936507936, 1e-12) || res.DF != 1 {
		t.Errorf("res = %+v", res)
	}
	// For df=1, p = 2*(1 - Phi(sqrt(stat))).
	if want := 2 * (1 - NormalCDF(math.Sqrt(res.Statistic))); !almostEqual(res.P, want, 1e-9) {
		t.Errorf("p = %v, want %v", res.P, want)
	}
}

func TestChiSquareIndependenceErrors(t *testing.T) {
	bad := [][][]float64{
		{{1, 2}},          // one row
		{{1}, {2}},        // one column
		{{1, 2}, {3}},     // ragged
		{{-1, 2}, {3, 4}}, // negative
		{{0, 0}, {0, 0}},  // all zero
	}
	for i, table := range bad {
		if _, err := ChiSquareIndependence(table); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
}

func TestBenjaminiHochberg(t *testing.T) {
	// Example with known outcome at q = 0.05:
	// sorted p: .001 .008 .039 .041 .042 .06 .074 .205 .212 .216
	// thresholds k/n*q: .005 .01 .015 .02 .025 .03 .035 .04 .045 .05
	// largest k with p <= threshold is k=2 (.008 <= .01); reject first two.
	pvals := []float64{0.205, 0.008, 0.039, 0.041, 0.001, 0.042, 0.06, 0.074, 0.212, 0.216}
	res := BenjaminiHochberg(pvals, 0.05)
	rejected := 0
	for _, r := range res {
		if r.Rejected {
			rejected++
			if r.P > 0.008 {
				t.Errorf("unexpectedly rejected p = %v", r.P)
			}
		}
	}
	if rejected != 2 {
		t.Errorf("rejected %d hypotheses, want 2", rejected)
	}
	// Adjusted p-values must be monotone in raw p order and >= raw p.
	for _, r := range res {
		if r.Adjusted < r.P-1e-12 || r.Adjusted > 1 {
			t.Errorf("bad adjusted p: raw=%v adj=%v", r.P, r.Adjusted)
		}
	}
	// Original order preserved.
	for i, r := range res {
		if r.Index != i || r.P != pvals[i] {
			t.Errorf("result %d out of order: %+v", i, r)
		}
	}
}

func TestBenjaminiHochbergAllSignificant(t *testing.T) {
	res := BenjaminiHochberg([]float64{0.0001, 0.0002, 0.0003}, 0.1)
	for _, r := range res {
		if !r.Rejected {
			t.Errorf("p = %v should be rejected", r.P)
		}
	}
}

func TestBenjaminiHochbergNoneSignificant(t *testing.T) {
	res := BenjaminiHochberg([]float64{0.5, 0.7, 0.9}, 0.05)
	for _, r := range res {
		if r.Rejected {
			t.Errorf("p = %v should not be rejected", r.P)
		}
	}
}

func TestBenjaminiHochbergEmpty(t *testing.T) {
	if res := BenjaminiHochberg(nil, 0.1); len(res) != 0 {
		t.Errorf("expected empty result, got %v", res)
	}
}

func TestCohensKappaKnown(t *testing.T) {
	// Textbook example: 2 raters, 50 items.
	// Rater A yes on 25, B yes on 30, both yes 20, both no 15.
	a := make([]string, 0, 50)
	b := make([]string, 0, 50)
	add := func(n int, la, lb string) {
		for i := 0; i < n; i++ {
			a = append(a, la)
			b = append(b, lb)
		}
	}
	add(20, "yes", "yes")
	add(5, "yes", "no")
	add(10, "no", "yes")
	add(15, "no", "no")
	k, err := CohensKappa(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// po = 0.70, pe = 0.5*0.6 + 0.5*0.4 = 0.5, kappa = 0.4.
	if !almostEqual(k, 0.4, 1e-12) {
		t.Errorf("kappa = %v, want 0.4", k)
	}
}

func TestCohensKappaPerfectAndChance(t *testing.T) {
	a := []string{"x", "y", "x", "y"}
	if k, _ := CohensKappa(a, a); !almostEqual(k, 1, 1e-12) {
		t.Errorf("perfect agreement kappa = %v", k)
	}
	// Constant identical labels: degenerate, conventionally 1.
	c := []string{"x", "x", "x"}
	if k, _ := CohensKappa(c, c); k != 1 {
		t.Errorf("degenerate kappa = %v", k)
	}
	if _, err := CohensKappa(nil, nil); err != ErrInsufficientData {
		t.Error("empty input should error")
	}
	if _, err := CohensKappa([]string{"a"}, []string{"a", "b"}); err != ErrInsufficientData {
		t.Error("length mismatch should error")
	}
}

func TestKappaInterpretationBands(t *testing.T) {
	cases := []struct {
		k    float64
		want string
	}{
		{-0.2, "poor"}, {0.1, "slight"}, {0.350, "fair"}, {0.519, "moderate"},
		{0.7, "substantial"}, {0.845, "strong"}, {0.893, "strong"},
	}
	for _, c := range cases {
		if got := KappaInterpretation(c.k); got != c.want {
			t.Errorf("KappaInterpretation(%v) = %q, want %q", c.k, got, c.want)
		}
	}
}

func TestProportion(t *testing.T) {
	if got := Proportion(1, 4); got != 0.25 {
		t.Errorf("Proportion = %v", got)
	}
	if got := Proportion(3, 0); got != 0 {
		t.Errorf("Proportion with zero total = %v", got)
	}
}

func TestWilsonInterval(t *testing.T) {
	// Known value: 10 successes of 100 at 95%: Wilson ~ [0.0552, 0.1744].
	lo, hi := WilsonInterval(10, 100, 1.959963984540054)
	if !almostEqual(lo, 0.05522, 3e-4) || !almostEqual(hi, 0.17436, 3e-4) {
		t.Errorf("Wilson(10,100) = [%v, %v]", lo, hi)
	}
	// Interval contains the point estimate.
	for _, c := range []struct{ s, n int }{{0, 10}, {10, 10}, {1, 3}, {500, 1000}} {
		lo, hi := WilsonInterval(c.s, c.n, 0)
		p := float64(c.s) / float64(c.n)
		if p < lo-1e-12 || p > hi+1e-12 {
			t.Errorf("Wilson(%d,%d) = [%v,%v] excludes %v", c.s, c.n, lo, hi, p)
		}
		if lo < 0 || hi > 1 {
			t.Errorf("Wilson(%d,%d) out of [0,1]", c.s, c.n)
		}
	}
	// Zero successes still produce a nonzero upper bound; full successes
	// a sub-one lower bound (the rule-of-three regime).
	if _, hi := WilsonInterval(0, 30, 0); hi <= 0 || hi > 0.2 {
		t.Errorf("Wilson(0,30) upper = %v", hi)
	}
	if lo, _ := WilsonInterval(30, 30, 0); lo >= 1 || lo < 0.8 {
		t.Errorf("Wilson(30,30) lower = %v", lo)
	}
	// Degenerate n.
	if lo, hi := WilsonInterval(0, 0, 0); lo != 0 || hi != 1 {
		t.Errorf("Wilson(0,0) = [%v,%v]", lo, hi)
	}
	// Wider intervals for smaller n at the same proportion.
	lo1, hi1 := WilsonInterval(5, 10, 0)
	lo2, hi2 := WilsonInterval(50, 100, 0)
	if hi1-lo1 <= hi2-lo2 {
		t.Error("smaller n should give a wider interval")
	}
}
