// Package stats implements the statistical machinery the paper's analyses
// rely on: descriptive statistics, one-way chi-square tests, two-sample
// t-tests (used on log thread sizes), the Benjamini–Hochberg procedure,
// Cohen's kappa inter-annotator agreement, and empirical CDFs.
//
// The special functions (regularised incomplete gamma and beta) are
// implemented from the standard series/continued-fraction expansions so the
// package needs nothing beyond the Go standard library.
package stats

import (
	"errors"
	"math"
)

// ErrInsufficientData is returned by tests that need more observations than
// were provided.
var ErrInsufficientData = errors.New("stats: insufficient data")

const (
	maxIterations = 500
	epsilon       = 3e-14
)

// GammaIncP returns the regularised lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a), for a > 0, x >= 0.
func GammaIncP(a, x float64) float64 {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContinuedFraction(a, x)
}

// GammaIncQ returns the regularised upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaIncQ(a, x float64) float64 {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaSeries(a, x)
	}
	return gammaContinuedFraction(a, x)
}

// gammaSeries evaluates P(a,x) by its series representation (x < a+1).
func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIterations; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*epsilon {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaContinuedFraction evaluates Q(a,x) by its continued fraction
// representation (x >= a+1), using the modified Lentz method.
func gammaContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIterations; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < epsilon {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// BetaInc returns the regularised incomplete beta function I_x(a, b) for
// a, b > 0 and x in [0, 1].
func BetaInc(a, b, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(x):
		return math.NaN()
	case a <= 0 || b <= 0 || x < 0 || x > 1:
		return math.NaN()
	case x == 0:
		return 0
	case x == 1:
		return 1
	}
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lgab, _ := math.Lgamma(a + b)
	front := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaContinuedFraction(a, b, x) / a
	}
	return 1 - front*betaContinuedFraction(b, a, 1-x)/b
}

// betaContinuedFraction evaluates the continued fraction for BetaInc using
// the modified Lentz method.
func betaContinuedFraction(a, b, x float64) float64 {
	const tiny = 1e-300
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIterations; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < epsilon {
			break
		}
	}
	return h
}

// ChiSquareCDF returns P(X <= x) for a chi-square distribution with k
// degrees of freedom.
func ChiSquareCDF(x float64, k float64) float64 {
	if x < 0 {
		return 0
	}
	return GammaIncP(k/2, x/2)
}

// ChiSquareSurvival returns P(X > x) for a chi-square distribution with k
// degrees of freedom, i.e. the upper-tail p-value for statistic x.
func ChiSquareSurvival(x float64, k float64) float64 {
	if x < 0 {
		return 1
	}
	return GammaIncQ(k/2, x/2)
}

// StudentTCDF returns P(T <= t) for Student's t distribution with nu
// degrees of freedom.
func StudentTCDF(t, nu float64) float64 {
	if nu <= 0 {
		return math.NaN()
	}
	x := nu / (nu + t*t)
	p := 0.5 * BetaInc(nu/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// StudentTSurvivalTwoSided returns the two-sided p-value for |T| >= |t|
// under Student's t with nu degrees of freedom.
func StudentTSurvivalTwoSided(t, nu float64) float64 {
	if nu <= 0 {
		return math.NaN()
	}
	return BetaInc(nu/2, 0.5, nu/(nu+t*t))
}

// NormalCDF returns the standard normal CDF Φ(x).
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
