package stats

import (
	"math"
	"sort"
)

// TTestResult reports a two-sample t-test.
type TTestResult struct {
	T        float64 // t statistic
	DF       float64 // degrees of freedom (Welch–Satterthwaite)
	P        float64 // two-sided p-value
	MeanDiff float64 // mean(a) - mean(b)
}

// WelchTTest performs a two-sample t-test with unequal variances (Welch's
// test), as used by the paper to compare the (log) size of threads
// containing calls to harassment against a random baseline (§6.3). It
// returns ErrInsufficientData unless both samples have at least two
// observations.
func WelchTTest(a, b []float64) (TTestResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return TTestResult{}, ErrInsufficientData
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	sa, sb := va/na, vb/nb
	se := math.Sqrt(sa + sb)
	var t float64
	if se == 0 {
		if ma == mb {
			t = 0
		} else {
			t = math.Inf(1)
			if ma < mb {
				t = math.Inf(-1)
			}
		}
	} else {
		t = (ma - mb) / se
	}
	// Welch–Satterthwaite degrees of freedom.
	df := (sa + sb) * (sa + sb) / (sa*sa/(na-1) + sb*sb/(nb-1))
	if math.IsNaN(df) || df <= 0 {
		df = na + nb - 2
	}
	p := StudentTSurvivalTwoSided(t, df)
	if math.IsInf(t, 0) {
		p = 0
	}
	return TTestResult{T: t, DF: df, P: p, MeanDiff: ma - mb}, nil
}

// ChiSquareResult reports a chi-square test.
type ChiSquareResult struct {
	Statistic float64
	DF        float64
	P         float64
}

// ChiSquareGOF performs a one-way chi-square goodness-of-fit test of the
// observed counts against the expected counts (the paper's "one-way
// chi-square tests" over reporting subcategories and gender breakdowns).
// If expected is nil, a uniform expectation over the categories is used.
// Categories with zero expected count are invalid.
func ChiSquareGOF(observed []float64, expected []float64) (ChiSquareResult, error) {
	if len(observed) < 2 {
		return ChiSquareResult{}, ErrInsufficientData
	}
	if expected == nil {
		total := 0.0
		for _, o := range observed {
			total += o
		}
		expected = make([]float64, len(observed))
		for i := range expected {
			expected[i] = total / float64(len(observed))
		}
	}
	if len(expected) != len(observed) {
		return ChiSquareResult{}, ErrInsufficientData
	}
	stat := 0.0
	for i, o := range observed {
		e := expected[i]
		if e <= 0 {
			return ChiSquareResult{}, ErrInsufficientData
		}
		d := o - e
		stat += d * d / e
	}
	df := float64(len(observed) - 1)
	return ChiSquareResult{Statistic: stat, DF: df, P: ChiSquareSurvival(stat, df)}, nil
}

// ChiSquareIndependence performs a chi-square test of independence over an
// r x c contingency table (used when comparing attack-subcategory
// distributions across data sets).
func ChiSquareIndependence(table [][]float64) (ChiSquareResult, error) {
	r := len(table)
	if r < 2 {
		return ChiSquareResult{}, ErrInsufficientData
	}
	c := len(table[0])
	if c < 2 {
		return ChiSquareResult{}, ErrInsufficientData
	}
	rowSums := make([]float64, r)
	colSums := make([]float64, c)
	total := 0.0
	for i, row := range table {
		if len(row) != c {
			return ChiSquareResult{}, ErrInsufficientData
		}
		for j, v := range row {
			if v < 0 || math.IsNaN(v) {
				return ChiSquareResult{}, ErrInsufficientData
			}
			rowSums[i] += v
			colSums[j] += v
			total += v
		}
	}
	if total == 0 {
		return ChiSquareResult{}, ErrInsufficientData
	}
	stat := 0.0
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			e := rowSums[i] * colSums[j] / total
			if e == 0 {
				continue
			}
			d := table[i][j] - e
			stat += d * d / e
		}
	}
	df := float64((r - 1) * (c - 1))
	return ChiSquareResult{Statistic: stat, DF: df, P: ChiSquareSurvival(stat, df)}, nil
}

// BHResult is the outcome of the Benjamini–Hochberg procedure for one
// hypothesis.
type BHResult struct {
	Index    int     // index into the original p-value slice
	P        float64 // raw p-value
	Adjusted float64 // BH-adjusted p-value
	Rejected bool    // true if the hypothesis is rejected at the given FDR
}

// BenjaminiHochberg applies the Benjamini–Hochberg false-discovery-rate
// procedure at rate q to the given p-values (the paper corrects its
// thread-response t-tests with BH at a default error rate of 0.1).
// Results are returned in the original input order.
func BenjaminiHochberg(pvals []float64, q float64) []BHResult {
	n := len(pvals)
	results := make([]BHResult, n)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return pvals[order[a]] < pvals[order[b]] })

	// Find the largest k with p_(k) <= k/n * q.
	cutoffRank := -1
	for rank, idx := range order {
		if pvals[idx] <= float64(rank+1)/float64(n)*q {
			cutoffRank = rank
		}
	}
	// Adjusted p-values: p_adj(k) = min over j >= k of (n/j) p_(j), capped at 1.
	adj := make([]float64, n)
	running := math.Inf(1)
	for rank := n - 1; rank >= 0; rank-- {
		idx := order[rank]
		v := pvals[idx] * float64(n) / float64(rank+1)
		if v < running {
			running = v
		}
		adj[rank] = math.Min(running, 1)
	}
	for rank, idx := range order {
		results[idx] = BHResult{
			Index:    idx,
			P:        pvals[idx],
			Adjusted: adj[rank],
			Rejected: rank <= cutoffRank,
		}
	}
	return results
}

// CohensKappa computes Cohen's kappa agreement between two raters whose
// labels over the same items are given in a and b. Labels are compared as
// strings; the slices must be equal-length and non-empty.
//
// The paper reports kappa 0.519 (crowd, doxing), 0.350 (crowd, CTH),
// 0.893 (experts, doxing) and 0.845 (experts, CTH).
func CohensKappa(a, b []string) (float64, error) {
	if len(a) == 0 || len(a) != len(b) {
		return 0, ErrInsufficientData
	}
	n := float64(len(a))
	countsA := map[string]float64{}
	countsB := map[string]float64{}
	agree := 0.0
	for i := range a {
		countsA[a[i]]++
		countsB[b[i]]++
		if a[i] == b[i] {
			agree++
		}
	}
	po := agree / n
	pe := 0.0
	for label, ca := range countsA {
		pe += (ca / n) * (countsB[label] / n)
	}
	if pe == 1 {
		// Both raters used a single identical label for everything;
		// agreement is perfect but kappa is undefined. Follow the common
		// convention of reporting 1.
		return 1, nil
	}
	return (po - pe) / (1 - pe), nil
}

// KappaInterpretation returns the conventional Landis–Koch qualitative
// band for a kappa value, matching the language the paper uses
// ("moderate agreement (0.519)", "fair agreement (0.350)", "strong").
func KappaInterpretation(kappa float64) string {
	switch {
	case kappa < 0:
		return "poor"
	case kappa <= 0.20:
		return "slight"
	case kappa <= 0.40:
		return "fair"
	case kappa <= 0.60:
		return "moderate"
	case kappa <= 0.80:
		return "substantial"
	default:
		return "strong"
	}
}

// Proportion returns part/total as a float64, or 0 when total is zero.
// It is the building block for every percentage cell in the paper's tables.
func Proportion(part, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(part) / float64(total)
}

// WilsonInterval returns the Wilson score confidence interval for a
// binomial proportion with successes out of n trials at confidence level
// z standard deviations (1.96 for 95%). It behaves well for the small
// counts and extreme proportions that fill the paper's tables, unlike the
// normal approximation.
func WilsonInterval(successes, n int, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	if z <= 0 {
		z = 1.959963984540054
	}
	p := float64(successes) / float64(n)
	nf := float64(n)
	z2 := z * z
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf)) / denom
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
