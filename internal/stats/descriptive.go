package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs, or NaN for
// fewer than two observations.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Median returns the median of xs, or NaN for empty input.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (q in [0,1]) of xs using linear
// interpolation between order statistics, or NaN for empty input or q
// outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if len(cp) == 1 {
		return cp[0]
	}
	pos := q * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// MinMax returns the minimum and maximum of xs, or (NaN, NaN) for empty
// input.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Summary bundles the descriptive statistics the paper reports for thread
// positions and sizes (median, mean, standard deviation).
type Summary struct {
	N      int
	Mean   float64
	Median float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary over xs.
func Summarize(xs []float64) Summary {
	min, max := MinMax(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Median: Median(xs),
		StdDev: StdDev(xs),
		Min:    min,
		Max:    max,
	}
}

// Log applies the natural logarithm element-wise, as the paper does to
// thread sizes before t-testing ("pairwise t-test on the log of the size of
// the threads"). Non-positive values are clamped to lnFloor to keep the
// transform total.
func Log(xs []float64) []float64 {
	const lnFloor = 1e-9
	out := make([]float64, len(xs))
	for i, x := range xs {
		if x < lnFloor {
			x = lnFloor
		}
		out[i] = math.Log(x)
	}
	return out
}

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from the sample xs.
func NewECDF(xs []float64) *ECDF {
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	return &ECDF{sorted: cp}
}

// At returns the empirical CDF value P(X <= x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	idx := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(e.sorted))
}

// Quantile returns the q-quantile of the underlying sample.
func (e *ECDF) Quantile(q float64) float64 {
	return Quantile(e.sorted, q)
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Points returns (x, cdf) pairs evaluated at each distinct sample value,
// suitable for plotting the CDF as the paper does in Figure 5.
func (e *ECDF) Points() (xs, ps []float64) {
	n := len(e.sorted)
	if n == 0 {
		return nil, nil
	}
	for i := 0; i < n; i++ {
		if i+1 < n && e.sorted[i+1] == e.sorted[i] {
			continue
		}
		xs = append(xs, e.sorted[i])
		ps = append(ps, float64(i+1)/float64(n))
	}
	return xs, ps
}
