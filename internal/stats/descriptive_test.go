package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanMedianStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Median(xs); got != 4.5 {
		t.Errorf("Median = %v, want 4.5", got)
	}
	// Sample stddev with n-1: variance = 32/7.
	want := math.Sqrt(32.0 / 7.0)
	if got := StdDev(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
}

func TestEmptyInputs(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Median(nil)) || !math.IsNaN(StdDev(nil)) {
		t.Error("empty-input descriptive stats should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of a single value should be NaN")
	}
	min, max := MinMax(nil)
	if !math.IsNaN(min) || !math.IsNaN(max) {
		t.Error("MinMax of empty should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(xs, -0.1)) || !math.IsNaN(Quantile(xs, 1.1)) {
		t.Error("out-of-range quantile should be NaN")
	}
	if got := Quantile([]float64{42}, 0.99); got != 42 {
		t.Errorf("singleton quantile = %v", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 100})
	if s.N != 5 || s.Mean != 22 || s.Median != 3 || s.Min != 1 || s.Max != 100 {
		t.Errorf("Summarize = %+v", s)
	}
}

func TestLogClampsNonPositive(t *testing.T) {
	out := Log([]float64{math.E, 0, -5})
	if !almostEqual(out[0], 1, 1e-12) {
		t.Errorf("Log(e) = %v", out[0])
	}
	if math.IsInf(out[1], -1) || math.IsNaN(out[2]) {
		t.Error("Log did not clamp non-positive inputs")
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("ECDF.At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.N() != 4 {
		t.Errorf("N = %d", e.N())
	}
	xs, ps := e.Points()
	if len(xs) != 3 || xs[1] != 2 || ps[1] != 0.75 || ps[2] != 1 {
		t.Errorf("Points = %v %v", xs, ps)
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if !math.IsNaN(e.At(1)) {
		t.Error("empty ECDF At should be NaN")
	}
	xs, ps := e.Points()
	if xs != nil || ps != nil {
		t.Error("empty ECDF Points should be nil")
	}
}

func TestECDFProperties(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		clean := raw[:0:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		e := NewECDF(clean)
		// CDF is monotone and bounded in [0, 1].
		prev := 0.0
		for _, x := range clean {
			p := e.At(x)
			if p < 0 || p > 1 {
				return false
			}
			_ = prev
		}
		min, max := MinMax(clean)
		if e.At(max) != 1 {
			return false
		}
		// Only check the below-minimum case when min-1 is representably
		// below min (fails for magnitudes near MaxFloat64).
		if below := min - 1; below < min && e.At(below) != 0 {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
