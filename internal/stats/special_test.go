package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestGammaIncPKnownValues(t *testing.T) {
	// Reference values from standard tables (scipy.special.gammainc).
	cases := []struct{ a, x, want float64 }{
		{1, 1, 0.6321205588285577},
		{1, 0, 0},
		{0.5, 0.5, 0.6826894921370859},
		{2, 2, 0.5939941502901616},
		{5, 1, 0.0036598468273437131},
		{5, 10, 0.9707473119230389},
		{10, 3, 0.0011024881301237366},
	}
	for _, c := range cases {
		got := GammaIncP(c.a, c.x)
		if !almostEqual(got, c.want, 1e-10) {
			t.Errorf("GammaIncP(%v,%v) = %v, want %v", c.a, c.x, got, c.want)
		}
	}
}

func TestGammaIncComplement(t *testing.T) {
	err := quick.Check(func(ai, xi uint16) bool {
		a := 0.1 + float64(ai%500)/10
		x := float64(xi%1000) / 10
		p := GammaIncP(a, x)
		q := GammaIncQ(a, x)
		return almostEqual(p+q, 1, 1e-9)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGammaIncInvalid(t *testing.T) {
	for _, c := range [][2]float64{{-1, 1}, {0, 1}, {1, -1}, {math.NaN(), 1}, {1, math.NaN()}} {
		if !math.IsNaN(GammaIncP(c[0], c[1])) {
			t.Errorf("GammaIncP(%v,%v) should be NaN", c[0], c[1])
		}
		if !math.IsNaN(GammaIncQ(c[0], c[1])) {
			t.Errorf("GammaIncQ(%v,%v) should be NaN", c[0], c[1])
		}
	}
}

func TestBetaIncKnownValues(t *testing.T) {
	// Reference values from scipy.special.betainc.
	cases := []struct{ a, b, x, want float64 }{
		{1, 1, 0.5, 0.5},
		{2, 2, 0.5, 0.5},
		{2, 5, 0.2, 0.34464},
		// Closed form: I_x(1/2, 1/2) = (2/pi) asin(sqrt(x)).
		{0.5, 0.5, 0.3, 2 / math.Pi * math.Asin(math.Sqrt(0.3))},
		{5, 2, 0.8, 0.65536},
		{10, 10, 0.5, 0.5},
	}
	for _, c := range cases {
		got := BetaInc(c.a, c.b, c.x)
		if !almostEqual(got, c.want, 1e-8) {
			t.Errorf("BetaInc(%v,%v,%v) = %v, want %v", c.a, c.b, c.x, got, c.want)
		}
	}
}

func TestBetaIncBoundsAndSymmetry(t *testing.T) {
	if got := BetaInc(3, 4, 0); got != 0 {
		t.Errorf("BetaInc at x=0 = %v", got)
	}
	if got := BetaInc(3, 4, 1); got != 1 {
		t.Errorf("BetaInc at x=1 = %v", got)
	}
	// I_x(a,b) = 1 - I_{1-x}(b,a)
	err := quick.Check(func(ai, bi, xi uint16) bool {
		a := 0.2 + float64(ai%100)/10
		b := 0.2 + float64(bi%100)/10
		x := float64(xi%1001) / 1000
		return almostEqual(BetaInc(a, b, x), 1-BetaInc(b, a, 1-x), 1e-9)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBetaIncInvalid(t *testing.T) {
	for _, c := range [][3]float64{{-1, 1, 0.5}, {1, 0, 0.5}, {1, 1, -0.1}, {1, 1, 1.1}, {math.NaN(), 1, 0.5}} {
		if !math.IsNaN(BetaInc(c[0], c[1], c[2])) {
			t.Errorf("BetaInc(%v,%v,%v) should be NaN", c[0], c[1], c[2])
		}
	}
}

func TestChiSquareCDFKnownValues(t *testing.T) {
	// Critical values: chi2(0.95, df=1)=3.841, df=5: 11.070, df=10: 18.307.
	cases := []struct{ x, df, want float64 }{
		{3.841458820694124, 1, 0.95},
		{11.070497693516351, 5, 0.95},
		{18.307038053275146, 10, 0.95},
		{0, 3, 0},
	}
	for _, c := range cases {
		got := ChiSquareCDF(c.x, c.df)
		if !almostEqual(got, c.want, 1e-9) {
			t.Errorf("ChiSquareCDF(%v, df=%v) = %v, want %v", c.x, c.df, got, c.want)
		}
	}
	if got := ChiSquareSurvival(3.841458820694124, 1); !almostEqual(got, 0.05, 1e-9) {
		t.Errorf("ChiSquareSurvival = %v, want 0.05", got)
	}
	if got := ChiSquareSurvival(-5, 2); got != 1 {
		t.Errorf("ChiSquareSurvival(-5) = %v, want 1", got)
	}
}

func TestStudentTCDFKnownValues(t *testing.T) {
	// t critical values: t(0.975, df=10) = 2.228, t(0.975, df=30) = 2.042.
	cases := []struct{ t, nu, want float64 }{
		{0, 5, 0.5},
		{2.2281388519649385, 10, 0.975},
		{-2.2281388519649385, 10, 0.025},
		{2.0422724563012373, 30, 0.975},
	}
	for _, c := range cases {
		got := StudentTCDF(c.t, c.nu)
		if !almostEqual(got, c.want, 1e-9) {
			t.Errorf("StudentTCDF(%v, nu=%v) = %v, want %v", c.t, c.nu, got, c.want)
		}
	}
	if got := StudentTSurvivalTwoSided(2.2281388519649385, 10); !almostEqual(got, 0.05, 1e-9) {
		t.Errorf("two-sided p = %v, want 0.05", got)
	}
	if !math.IsNaN(StudentTCDF(1, 0)) {
		t.Error("StudentTCDF with nu=0 should be NaN")
	}
}

func TestNormalCDF(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{1, 0.8413447460685429},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestCDFMonotonicity(t *testing.T) {
	err := quick.Check(func(x1, x2 int16, dfi uint8) bool {
		a := float64(x1) / 100
		b := float64(x2) / 100
		if a > b {
			a, b = b, a
		}
		df := 1 + float64(dfi%30)
		return StudentTCDF(a, df) <= StudentTCDF(b, df)+1e-12
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}
