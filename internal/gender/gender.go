// Package gender implements the paper's pronoun-based inference of the
// likely gender of a dox or call-to-harassment target (§5.6): gendered
// pronouns are extracted with word-boundary matching and the target's
// likely gender is the pronoun group ("he/him/his" vs "she/her/hers")
// that occurs most frequently. Ties and pronoun-free documents are
// Unknown.
//
// As the paper notes, the method is a heuristic: it mislabels targets when
// the attacker lacks knowledge of, or deliberately misuses, the target's
// pronouns. The reproduction preserves those limitations.
package gender

import (
	"regexp"
)

// Gender is the inferred likely gender of a target.
type Gender string

// Inference outcomes. The paper's Table 10 columns are Unknown, Female,
// Male.
const (
	Unknown Gender = "unknown"
	Female  Gender = "female"
	Male    Gender = "male"
)

var (
	reMale   = regexp.MustCompile(`(?i)\b(?:he|him|his|himself)\b`)
	reFemale = regexp.MustCompile(`(?i)\b(?:she|her|hers|herself)\b`)
)

// Counts reports the number of male-group and female-group pronouns in
// text.
func Counts(text string) (male, female int) {
	return len(reMale.FindAllString(text, -1)), len(reFemale.FindAllString(text, -1))
}

// Infer returns the likely target gender for text by majority pronoun
// group, Unknown on ties or absence of pronouns.
func Infer(text string) Gender {
	male, female := Counts(text)
	switch {
	case male > female:
		return Male
	case female > male:
		return Female
	default:
		return Unknown
	}
}

// All returns the three gender values in the paper's Table 10 column
// order.
func All() []Gender { return []Gender{Unknown, Female, Male} }
