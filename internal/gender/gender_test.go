package gender

import "testing"

func TestInfer(t *testing.T) {
	cases := []struct {
		text string
		want Gender
	}{
		{"report him to his boss, he deserves it", Male},
		{"she posted her address, get her", Female},
		{"post the dox already", Unknown},
		{"he said she said", Unknown},                     // tie
		{"He met her and told him about his plans", Male}, // 3 male vs 1 female
		{"HE and HIS and HIM", Male},                      // case-insensitive
		{"the shepherd held a herd of sheep", Unknown},    // no word-boundary leaks
		{"theme cache history", Unknown},                  // substrings only
		{"herself was doxed and her info leaked", Female},
		{"himself admitted it", Male},
	}
	for _, c := range cases {
		if got := Infer(c.text); got != c.want {
			t.Errorf("Infer(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

func TestCounts(t *testing.T) {
	m, f := Counts("he told her that his sister saw her")
	if m != 2 || f != 2 {
		t.Errorf("Counts = (%d, %d), want (2, 2)", m, f)
	}
	m, f = Counts("")
	if m != 0 || f != 0 {
		t.Errorf("empty Counts = (%d, %d)", m, f)
	}
}

func TestAllOrder(t *testing.T) {
	all := All()
	if len(all) != 3 || all[0] != Unknown || all[1] != Female || all[2] != Male {
		t.Errorf("All() = %v", all)
	}
}

func TestAccuracyOnPlantedSample(t *testing.T) {
	// The paper validated the method on 123 pronoun-bearing doxes with
	// 94.3% accuracy. Mirror the check: planted pronoun-dominant docs
	// must be recovered.
	males := []string{
		"his address is below, report him",
		"he works at the plant, tell his boss",
	}
	females := []string{
		"her facebook is linked, she posts daily",
		"expose her, she runs the account herself",
	}
	for _, m := range males {
		if Infer(m) != Male {
			t.Errorf("male doc mislabelled: %q", m)
		}
	}
	for _, f := range females {
		if Infer(f) != Female {
			t.Errorf("female doc mislabelled: %q", f)
		}
	}
}
