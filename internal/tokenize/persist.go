package tokenize

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// Save writes the vocabulary to w, one piece per line (the standard
// WordPiece vocab.txt format). Pieces are written in sorted order so the
// artifact is deterministic.
func (v *Vocab) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, p := range v.Pieces() {
		if _, err := fmt.Fprintln(bw, p); err != nil {
			return fmt.Errorf("tokenize: save vocab: %w", err)
		}
	}
	return bw.Flush()
}

// SaveFile writes the vocabulary to the named file.
func (v *Vocab) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tokenize: save vocab %s: %w", path, err)
	}
	if err := v.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadVocab reads a vocabulary in one-piece-per-line format.
func LoadVocab(r io.Reader) (*Vocab, error) {
	var pieces []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\r\n")
		if line == "" {
			continue
		}
		pieces = append(pieces, line)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tokenize: load vocab: %w", err)
	}
	return NewVocab(pieces), nil
}

// LoadVocabFile reads a vocabulary from the named file.
func LoadVocabFile(path string) (*Vocab, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tokenize: load vocab %s: %w", path, err)
	}
	defer f.Close()
	return LoadVocab(f)
}
