package tokenize

import (
	"sort"
	"strings"
)

// Train learns a WordPiece vocabulary from the corpus using the standard
// likelihood-score merge rule: at each step the pair (a, b) maximising
// freq(ab) / (freq(a) * freq(b)) is merged, provided freq(ab) meets the
// minimum pair frequency. Words are pre-split with BasicTokenize.
//
// The trainer maintains pair frequencies incrementally: a merge only
// touches the words that actually contain the merged pair (found through
// an inverted pair→words index), instead of recounting and re-sorting
// every adjacent pair in the corpus on every iteration the way the
// textbook loop does. Pieces are interned to integer ids so the scan for
// the best pair compares ids, not strings. Selection is bit-equivalent
// to scanning all candidate pairs in lexicographic (a, b) order with a
// strict score comparison — the maximum score wins and exact float ties
// keep the lexicographically smallest pair — so the produced vocabulary
// is identical to the reference implementation's, merge for merge.
func Train(corpus []string, cfg TrainerConfig) *Vocab {
	cfg.fillDefaults()

	// Word frequency table over the corpus.
	wordFreq := map[string]int{}
	for _, doc := range corpus {
		for _, w := range BasicTokenize(doc) {
			if len(w) > cfg.MaxWordLength {
				w = w[:cfg.MaxWordLength]
			}
			wordFreq[w]++
		}
	}

	// Deterministic word order (ids and index layout depend on it).
	sortedWords := make([]string, 0, len(wordFreq))
	for w := range wordFreq {
		sortedWords = append(sortedWords, w)
	}
	sort.Strings(sortedWords)

	tr := &trainer{
		ids:     make(map[string]int32, cfg.VocabSize),
		pairIdx: make(map[uint64]int32, 4*len(sortedWords)),
		minPair: int64(cfg.MinPairFrequency),
	}

	// Each word starts segmented into characters, with continuation
	// markers on all but the first.
	for _, w := range sortedWords {
		f := wordFreq[w]
		runes := []rune(w)
		ids := make([]int32, len(runes))
		for i, r := range runes {
			p := string(r)
			if i > 0 {
				p = ContinuationPrefix + p
			}
			id := tr.intern(p)
			ids[i] = id
			tr.cnt[id] += int64(f)
		}
		tr.words = append(tr.words, segWord{ids: ids, freq: f})
	}
	tr.stamp = make([]int32, len(tr.words))
	for wi := range tr.words {
		w := &tr.words[wi]
		for i := 0; i+1 < len(w.ids); i++ {
			tr.addPair(w.ids[i], w.ids[i+1], w.freq, int32(wi))
		}
	}

	// len(tr.ids) counts every piece ever created — including pieces
	// later merged down to zero frequency — matching the reference
	// loop's len(pieceFreq) stopping rule exactly.
	for len(tr.ids) < cfg.VocabSize {
		best := tr.selectBest()
		if best < 0 {
			break
		}
		if !tr.applyMerge(best) {
			// The merge applied nowhere (stale pair); with exact pair
			// bookkeeping this is unreachable, but avoid looping forever.
			break
		}
	}

	pieces := make([]string, 0, len(tr.strs))
	for id, c := range tr.cnt {
		if c > 0 {
			pieces = append(pieces, tr.strs[id])
		}
	}
	return NewVocab(pieces)
}

// segWord is one distinct corpus word as a sequence of piece ids.
type segWord struct {
	ids  []int32
	freq int
}

// pairRec is one adjacent piece pair and its current corpus frequency.
// Records are append-only; a pair whose frequency drops below the merge
// threshold stays in place and is skipped by the selection scan.
type pairRec struct {
	a, b int32
	freq int64
}

type trainer struct {
	ids  map[string]int32 // piece string -> id
	strs []string         // id -> piece string
	cnt  []int64          // id -> current corpus frequency

	words []segWord

	pairIdx   map[uint64]int32 // packed (a, b) -> index into pairs
	pairs     []pairRec
	pairWords [][]int32 // pair index -> word indices that contributed counts

	// stamp/gen deduplicate word visits within one merge application:
	// pairWords lists may hold duplicate or stale entries.
	stamp []int32
	gen   int32

	minPair int64
}

func (t *trainer) intern(p string) int32 {
	if id, ok := t.ids[p]; ok {
		return id
	}
	id := int32(len(t.strs))
	t.ids[p] = id
	t.strs = append(t.strs, p)
	t.cnt = append(t.cnt, 0)
	return id
}

func pairKey(a, b int32) uint64 {
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

func (t *trainer) addPair(a, b int32, freq int, wi int32) {
	k := pairKey(a, b)
	pi, ok := t.pairIdx[k]
	if !ok {
		pi = int32(len(t.pairs))
		t.pairIdx[k] = pi
		t.pairs = append(t.pairs, pairRec{a: a, b: b})
		t.pairWords = append(t.pairWords, nil)
	}
	t.pairs[pi].freq += int64(freq)
	t.pairWords[pi] = append(t.pairWords[pi], wi)
}

func (t *trainer) decPair(a, b int32, freq int) {
	t.pairs[t.pairIdx[pairKey(a, b)]].freq -= int64(freq)
}

// selectBest returns the index of the best-scoring eligible pair, or -1.
// Ties on the exact float score keep the lexicographically smallest
// (a, b) — the pair a sorted scan with a strict ">" would have kept.
func (t *trainer) selectBest() int32 {
	best := int32(-1)
	bestScore := -1.0
	for i := range t.pairs {
		p := &t.pairs[i]
		if p.freq < t.minPair {
			continue
		}
		score := float64(p.freq) / (float64(t.cnt[p.a]) * float64(t.cnt[p.b]))
		if score > bestScore || (score == bestScore && t.lexLess(int32(i), best)) {
			bestScore = score
			best = int32(i)
		}
	}
	return best
}

func (t *trainer) lexLess(i, j int32) bool {
	pi, pj := &t.pairs[i], &t.pairs[j]
	if t.strs[pi.a] != t.strs[pj.a] {
		return t.strs[pi.a] < t.strs[pj.a]
	}
	return t.strs[pi.b] < t.strs[pj.b]
}

// applyMerge merges the selected pair in every word that contains it,
// replicating the reference left-to-right non-overlapping replacement
// (with its re-check of the merged position) id for id. Pair counts for
// a changed word are retired wholesale and re-added from its new
// segmentation, which reproduces exactly what a full recount would see.
func (t *trainer) applyMerge(pi int32) bool {
	a, b := t.pairs[pi].a, t.pairs[pi].b
	merged := t.strs[a] + strings.TrimPrefix(t.strs[b], ContinuationPrefix)
	m := t.intern(merged)

	t.gen++
	applied := false
	for _, wi := range t.pairWords[pi] {
		if t.stamp[wi] == t.gen {
			continue
		}
		t.stamp[wi] = t.gen
		w := &t.words[wi]
		has := false
		for i := 0; i+1 < len(w.ids); i++ {
			if w.ids[i] == a && w.ids[i+1] == b {
				has = true
				break
			}
		}
		if !has {
			continue
		}
		f := w.freq
		for i := 0; i+1 < len(w.ids); i++ {
			t.decPair(w.ids[i], w.ids[i+1], f)
		}
		for i := 0; i+1 < len(w.ids); i++ {
			if w.ids[i] == a && w.ids[i+1] == b {
				t.cnt[a] -= int64(f)
				t.cnt[b] -= int64(f)
				t.cnt[m] += int64(f)
				w.ids[i] = m
				w.ids = append(w.ids[:i+1], w.ids[i+2:]...)
				i--
				applied = true
			}
		}
		for i := 0; i+1 < len(w.ids); i++ {
			t.addPair(w.ids[i], w.ids[i+1], f, wi)
		}
	}
	return applied
}
