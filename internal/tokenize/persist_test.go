package tokenize

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestVocabSaveLoadRoundTrip(t *testing.T) {
	corpus := []string{"mass reporting of harassment", "doxing on image boards"}
	v := Train(corpus, TrainerConfig{VocabSize: 120})
	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadVocab(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v.Pieces(), loaded.Pieces()) {
		t.Fatal("vocab round trip changed pieces")
	}
	// Tokenization must be identical.
	a := NewTokenizer(v).Tokenize("mass reporting of doxing")
	b := NewTokenizer(loaded).Tokenize("mass reporting of doxing")
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("tokenization diverged: %v vs %v", a, b)
	}
}

func TestVocabSaveLoadFile(t *testing.T) {
	v := NewVocab([]string{"a", "##b", "ab"})
	path := filepath.Join(t.TempDir(), "vocab.txt")
	if err := v.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadVocabFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != 3 || !loaded.Contains("##b") {
		t.Fatalf("loaded vocab = %v", loaded.Pieces())
	}
}

func TestLoadVocabSkipsBlankLines(t *testing.T) {
	v, err := LoadVocab(strings.NewReader("a\n\n##b\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != 2 {
		t.Fatalf("size = %d", v.Size())
	}
}

func TestLoadVocabFileMissing(t *testing.T) {
	if _, err := LoadVocabFile(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Error("missing file should error")
	}
}
