// Package tokenize implements the text segmentation stack the paper's
// classifiers are built on: punctuation splitting into basic tokens, a
// trainable WordPiece sub-word vocabulary (the segmentation algorithm
// used by BERT/distilBERT), and the long-document span strategies from
// §5.2, including the paper's chosen default of random spanning without
// overlap.
package tokenize

import (
	"sort"
	"unicode/utf8"

	"harassrepro/internal/randx"
)

// UnknownToken is the token emitted for words that cannot be segmented
// with the trained vocabulary.
const UnknownToken = "[UNK]"

// ContinuationPrefix marks non-initial word pieces, as in BERT's
// WordPiece ("harass" -> "harass", "##ment").
const ContinuationPrefix = "##"

// BasicTokenize lower-cases text and splits it into words on whitespace
// and punctuation; punctuation marks become their own tokens
// ("punctuation splitting" in §5.2).
//
// This is the convenience wrapper over BasicTokenizer: the returned
// tokens are independent of any reusable scratch. Scoring hot paths
// should hold a BasicTokenizer (or a Session) instead.
func BasicTokenize(text string) []string {
	var bt BasicTokenizer
	toks := bt.Tokenize(text)
	if len(toks) == 0 {
		return nil
	}
	// bt is single-use, so returning its arena-backed views is safe: the
	// arena is never overwritten and stays live for as long as the tokens.
	return toks
}

// Vocab is a trained WordPiece vocabulary. Pieces are stored as their
// own canonical strings so lookups can return an interned piece that is
// stable across calls — the property the zero-allocation Session path
// relies on to hand out tokens without copying.
type Vocab struct {
	pieces map[string]string
	// maxPieceRunes bounds the greedy longest-match search: no lookup
	// key longer than the longest stored piece can succeed, so the
	// segmenter never needs to try candidates beyond this length.
	maxPieceRunes int
}

// NewVocab builds a Vocab directly from a list of pieces. Continuation
// pieces must carry the "##" prefix.
func NewVocab(pieces []string) *Vocab {
	m := make(map[string]string, len(pieces))
	v := &Vocab{pieces: m}
	for _, p := range pieces {
		m[p] = p
		if n := utf8.RuneCountInString(p); n > v.maxPieceRunes {
			v.maxPieceRunes = n
		}
	}
	return v
}

// Size returns the number of pieces in the vocabulary.
func (v *Vocab) Size() int { return len(v.pieces) }

// Contains reports whether piece is in the vocabulary.
func (v *Vocab) Contains(piece string) bool {
	_, ok := v.pieces[piece]
	return ok
}

// canon returns the interned copy of piece, looked up by a byte-slice
// key. The string(key) conversion is recognised by the compiler as a
// map-access key and does not allocate.
func (v *Vocab) canon(key []byte) (string, bool) {
	p, ok := v.pieces[string(key)]
	return p, ok
}

// canonString is canon for keys already available as (possibly
// scratch-backed) strings; the returned piece is the stable interned
// copy, never the argument.
func (v *Vocab) canonString(key string) (string, bool) {
	p, ok := v.pieces[key]
	return p, ok
}

// Pieces returns the vocabulary contents in sorted order.
func (v *Vocab) Pieces() []string {
	out := make([]string, 0, len(v.pieces))
	for p := range v.pieces {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// TrainerConfig controls WordPiece vocabulary training.
type TrainerConfig struct {
	// VocabSize is the target vocabulary size (including single
	// characters). Training stops when it is reached or no more merges
	// are possible.
	VocabSize int
	// MinPairFrequency is the minimum corpus frequency for a piece pair
	// to be eligible for merging. Defaults to 2.
	MinPairFrequency int
	// MaxWordLength truncates pathological words during training.
	// Defaults to 64.
	MaxWordLength int
}

func (c *TrainerConfig) fillDefaults() {
	if c.VocabSize <= 0 {
		c.VocabSize = 4096
	}
	if c.MinPairFrequency <= 0 {
		c.MinPairFrequency = 2
	}
	if c.MaxWordLength <= 0 {
		c.MaxWordLength = 64
	}
}

// Tokenizer segments text into word pieces with a trained vocabulary
// using greedy longest-match-first, as in BERT.
type Tokenizer struct {
	vocab        *Vocab
	maxWordChars int
}

// NewTokenizer returns a Tokenizer over the given vocabulary.
func NewTokenizer(vocab *Vocab) *Tokenizer {
	return &Tokenizer{vocab: vocab, maxWordChars: 100}
}

// Vocab returns the tokenizer's vocabulary (for persistence).
func (t *Tokenizer) Vocab() *Vocab { return t.vocab }

// Tokenize segments text into word pieces. Words that cannot be fully
// segmented become a single UnknownToken.
//
// This is the convenience wrapper over Session; scoring hot paths
// should hold a Session per goroutine instead.
func (t *Tokenizer) Tokenize(text string) []string {
	s := t.NewSession()
	toks := s.Tokenize(text)
	if len(toks) == 0 {
		return nil
	}
	// The session is single-use, so its output slice can be returned
	// directly; the piece strings are interned vocabulary entries.
	return toks
}

// SpanStrategy selects how documents longer than the model's maximum
// sequence length are reduced (§5.2). The paper evaluated four
// strategies and chose random spanning without overlap.
type SpanStrategy int

const (
	// SpanRandomNoOverlap takes non-overlapping spans starting at random
	// offsets covering distinct areas of the document — the paper's
	// chosen strategy ("random spanning without overlap ... ensured that
	// we had spans of text from all areas of the input document").
	SpanRandomNoOverlap SpanStrategy = iota
	// SpanBeginEnd takes one span from the beginning and one from the
	// end of the document.
	SpanBeginEnd
	// SpanOverlapping takes spans with 50% overlap during splitting.
	SpanOverlapping
	// SpanRandomLength takes spans of random length (between half and
	// full max length) at random offsets.
	SpanRandomLength
)

// String returns the strategy name.
func (s SpanStrategy) String() string {
	switch s {
	case SpanRandomNoOverlap:
		return "random-no-overlap"
	case SpanBeginEnd:
		return "begin-end"
	case SpanOverlapping:
		return "overlapping"
	case SpanRandomLength:
		return "random-length"
	default:
		return "unknown"
	}
}

// Spans reduces tokens to at most maxSpans spans of at most maxLen tokens
// each, according to the strategy. Documents no longer than maxLen are
// returned as a single full span. rng is only consulted by the random
// strategies.
func Spans(tokens []string, maxLen, maxSpans int, strategy SpanStrategy, rng *randx.Source) [][]string {
	if maxLen <= 0 {
		maxLen = 512
	}
	if maxSpans <= 0 {
		maxSpans = 1
	}
	if len(tokens) <= maxLen {
		return [][]string{tokens}
	}
	switch strategy {
	case SpanBeginEnd:
		spans := [][]string{tokens[:maxLen]}
		if maxSpans > 1 {
			spans = append(spans, tokens[len(tokens)-maxLen:])
		}
		return spans
	case SpanOverlapping:
		var spans [][]string
		step := maxLen / 2
		if step == 0 {
			step = 1
		}
		for start := 0; start < len(tokens) && len(spans) < maxSpans; start += step {
			end := start + maxLen
			if end > len(tokens) {
				end = len(tokens)
			}
			spans = append(spans, tokens[start:end])
			if end == len(tokens) {
				break
			}
		}
		return spans
	case SpanRandomLength:
		var spans [][]string
		for i := 0; i < maxSpans; i++ {
			l := maxLen/2 + rng.Intn(maxLen/2+1)
			if l > len(tokens) {
				l = len(tokens)
			}
			start := rng.Intn(len(tokens) - l + 1)
			spans = append(spans, tokens[start:start+l])
		}
		return spans
	default: // SpanRandomNoOverlap
		// Partition the document into ceil(n/maxLen) chunks, shuffle the
		// chunk order, and keep the first maxSpans: random spans, no
		// overlap, covering all areas of the document.
		var chunks [][]string
		for start := 0; start < len(tokens); start += maxLen {
			end := start + maxLen
			if end > len(tokens) {
				end = len(tokens)
			}
			chunks = append(chunks, tokens[start:end])
		}
		randx.Shuffle(rng, chunks)
		if len(chunks) > maxSpans {
			chunks = chunks[:maxSpans]
		}
		return chunks
	}
}

// Truncate limits tokens to at most maxLen tokens, used when a single
// fixed-length input is required.
func Truncate(tokens []string, maxLen int) []string {
	if maxLen > 0 && len(tokens) > maxLen {
		return tokens[:maxLen]
	}
	return tokens
}
