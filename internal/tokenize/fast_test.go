package tokenize

// Golden equivalence and allocation-regression tests for the
// zero-allocation fast path. referenceBasicTokenize and
// referenceWordPiece are verbatim copies of the pre-optimisation
// implementations; the fast path must match them byte for byte on every
// input, including adversarial Unicode.

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode"

	"harassrepro/internal/testutil"
)

// referenceBasicTokenize is the legacy BasicTokenize implementation
// (full ToLower copy + per-word Builder), kept as the equivalence oracle.
func referenceBasicTokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range strings.ToLower(text) {
		switch {
		case unicode.IsSpace(r):
			flush()
		case unicode.IsPunct(r) || unicode.IsSymbol(r):
			flush()
			tokens = append(tokens, string(r))
		default:
			b.WriteRune(r)
		}
	}
	flush()
	return tokens
}

// referenceWordPiece is the legacy Tokenizer.Tokenize implementation
// ([]rune conversion + string concatenation per candidate piece).
func referenceWordPiece(t *Tokenizer, text string) []string {
	tokenizeWord := func(word string) []string {
		runes := []rune(word)
		if len(runes) > t.maxWordChars {
			return []string{UnknownToken}
		}
		var pieces []string
		start := 0
		for start < len(runes) {
			end := len(runes)
			var cur string
			ok := false
			for end > start {
				piece := string(runes[start:end])
				if start > 0 {
					piece = ContinuationPrefix + piece
				}
				if t.vocab.Contains(piece) {
					cur = piece
					ok = true
					break
				}
				end--
			}
			if !ok {
				return []string{UnknownToken}
			}
			pieces = append(pieces, cur)
			start = end
		}
		return pieces
	}
	var out []string
	for _, word := range referenceBasicTokenize(text) {
		out = append(out, tokenizeWord(word)...)
	}
	return out
}

// goldenTexts exercises ASCII prose, punctuation runs, multi-byte
// runes, case-fold specials, invalid UTF-8 and degenerate shapes.
var goldenTexts = []string{
	"",
	"   \t\n  ",
	"Hello, World!",
	"we need to mass-report his twitter and youtube, spread the word",
	"DOX: Jane Roe / Address: 99 Cedar Lane, Riverton, TX, 75001 / Phone: (212) 555-0188 / fb: jane.roe.42",
	"MiXeD CaSe WITH Ünïcode and 日本語 mixed in",
	"emoji \U0001F600 and symbols ©®™ £100 ±5",
	"İstanbul STRASSE ﬂuent ſtreet Kelvin", // case-fold special points
	"a\xffb\xfe invalid \xc3(",             // invalid UTF-8 bytes
	strings.Repeat("long-word-", 40) + strings.Repeat("x", 200),
	"don't stop: e-mail @user #tag 100%",
	"ßẞ sharp-s pair",
}

func TestBasicTokenizerMatchesReference(t *testing.T) {
	var bt BasicTokenizer
	for _, text := range goldenTexts {
		want := referenceBasicTokenize(text)
		got := bt.Tokenize(text)
		if len(got) != len(want) {
			t.Fatalf("Tokenize(%q): %d tokens, want %d\ngot  %q\nwant %q", text, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("Tokenize(%q)[%d] = %q, want %q", text, i, got[i], want[i])
			}
		}
		// The package-level wrapper must agree too.
		if wrap := BasicTokenize(text); !equalTokens(wrap, want) {
			t.Errorf("BasicTokenize(%q) = %q, want %q", text, wrap, want)
		}
	}
}

func TestBasicTokenizerMatchesReferenceQuick(t *testing.T) {
	var bt BasicTokenizer
	err := quick.Check(func(s string) bool {
		return equalTokens(bt.Tokenize(s), referenceBasicTokenize(s))
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSessionMatchesReference(t *testing.T) {
	corpus := []string{
		"mass reporting of harassment and doxing on image boards",
		"the harasser keeps harassing and reporting",
		"report the stream, raid the channel, flood her mentions",
	}
	tok := NewTokenizer(Train(corpus, TrainerConfig{VocabSize: 300}))
	sess := tok.NewSession()
	for _, text := range append(goldenTexts, corpus...) {
		want := referenceWordPiece(tok, text)
		got := sess.Tokenize(text)
		if !equalTokens(got, want) {
			t.Errorf("Session.Tokenize(%q) = %q, want %q", text, got, want)
		}
		if wrap := tok.Tokenize(text); !equalTokens(wrap, want) {
			t.Errorf("Tokenizer.Tokenize(%q) = %q, want %q", text, wrap, want)
		}
	}
}

func TestSessionMatchesReferenceQuick(t *testing.T) {
	tok := NewTokenizer(NewVocab([]string{
		"a", "b", "c", "ab", "abc", "##a", "##b", "##c", "##bc", "x", "##x",
	}))
	sess := tok.NewSession()
	err := quick.Check(func(s string) bool {
		return equalTokens(sess.Tokenize(s), referenceWordPiece(tok, s))
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSessionPiecesStableAcrossCalls verifies the documented contract:
// the token slice is reused, but emitted piece strings stay valid.
func TestSessionPiecesStableAcrossCalls(t *testing.T) {
	tok := NewTokenizer(NewVocab([]string{"dox", "##ing", "raid"}))
	sess := tok.NewSession()
	first := append([]string(nil), sess.Tokenize("doxing")...)
	sess.Tokenize("raid raid raid")
	if !reflect.DeepEqual(first, []string{"dox", "##ing"}) {
		t.Fatalf("pieces clobbered by next call: %q", first)
	}
}

// TestBasicTokenizerZeroAllocs is the allocation-regression gate for
// the basic fast path: steady-state tokenization must not allocate.
func TestBasicTokenizerZeroAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	var bt BasicTokenizer
	text := "we need to Mass-Report his twitter AND youtube, spread the word!"
	bt.Tokenize(text) // warm the arena
	if n := testing.AllocsPerRun(100, func() {
		bt.Tokenize(text)
	}); n != 0 {
		t.Errorf("BasicTokenizer.Tokenize allocates %v per op, want 0", n)
	}
}

// TestSessionZeroAllocs is the allocation-regression gate for the
// WordPiece fast path.
func TestSessionZeroAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	corpus := []string{"mass reporting of harassment and doxing on image boards"}
	tok := NewTokenizer(Train(corpus, TrainerConfig{VocabSize: 200}))
	sess := tok.NewSession()
	text := "mass reporting of harassment and doxing on image boards"
	sess.Tokenize(text) // warm the scratch
	if n := testing.AllocsPerRun(100, func() {
		sess.Tokenize(text)
	}); n != 0 {
		t.Errorf("Session.Tokenize allocates %v per op, want 0", n)
	}
}

func equalTokens(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkBasicTokenizeLegacyWrapper(b *testing.B) {
	b.ReportAllocs()
	text := "we need to mass-report his twitter and youtube, spread the word"
	for i := 0; i < b.N; i++ {
		BasicTokenize(text)
	}
}

func BenchmarkBasicTokenizerReuse(b *testing.B) {
	b.ReportAllocs()
	var bt BasicTokenizer
	text := "we need to mass-report his twitter and youtube, spread the word"
	for i := 0; i < b.N; i++ {
		bt.Tokenize(text)
	}
}

func BenchmarkSessionTokenize(b *testing.B) {
	corpus := []string{"mass reporting of harassment and doxing on image boards"}
	tok := NewTokenizer(Train(corpus, TrainerConfig{VocabSize: 200}))
	sess := tok.NewSession()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.Tokenize("mass reporting of harassment and doxing on image boards")
	}
}
