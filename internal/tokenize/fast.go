package tokenize

// The zero-allocation scoring fast path. The legacy entry points
// (BasicTokenize, Tokenizer.Tokenize) pay one full strings.ToLower copy
// plus a strings.Builder per word and a fresh []string per document —
// acceptable for training, ruinous for a scoring loop that exists to
// process hundreds of millions of documents (Table 1). BasicTokenizer
// and Session keep per-goroutine scratch buffers so that steady-state
// tokenization performs no heap allocations at all: the input is
// lower-cased and split in a single pass into a reusable byte arena,
// and tokens are handed out as views into that arena (basic path) or as
// interned vocabulary strings (WordPiece path).
//
// Equivalence with the legacy implementations is load-bearing and
// covered by golden tests: for every input, BasicTokenizer.Tokenize
// yields exactly the tokens of legacy BasicTokenize, and
// Session.Tokenize exactly the pieces of legacy Tokenizer.Tokenize.

import (
	"unicode"
	"unicode/utf8"
	"unsafe"
)

// BasicTokenizer is a reusable basic tokenizer with scratch buffers.
// It performs the same lower-casing and punctuation splitting as
// BasicTokenize in a single pass over the input, without the ToLower
// copy or per-word Builder churn.
//
// Not safe for concurrent use. The returned slice and its strings alias
// the tokenizer's internal arena and are only valid until the next
// Tokenize call; callers that retain tokens must copy them.
type BasicTokenizer struct {
	buf   []byte // lower-cased bytes of the current document
	spans []span // token boundaries within buf
	toks  []string
}

type span struct{ start, end int32 }

// Character classes for the ASCII fast path.
const (
	classWord byte = iota
	classSpace
	classPunct
)

// asciiClass caches the word/space/punctuation decision for every ASCII
// byte. It is built from the same unicode predicates the rune path
// uses, so the two paths cannot disagree.
var asciiClass [128]byte

func init() {
	for c := range asciiClass {
		r := unicode.ToLower(rune(c))
		switch {
		case unicode.IsSpace(r):
			asciiClass[c] = classSpace
		case unicode.IsPunct(r) || unicode.IsSymbol(r):
			asciiClass[c] = classPunct
		default:
			asciiClass[c] = classWord
		}
	}
}

// Tokenize lower-cases text and splits it into words on whitespace and
// punctuation, with punctuation marks as their own tokens — identical
// output to BasicTokenize.
func (bt *BasicTokenizer) Tokenize(text string) []string {
	bt.buf = bt.buf[:0]
	bt.spans = bt.spans[:0]
	wordStart := int32(-1)
	flush := func() {
		if wordStart >= 0 {
			bt.spans = append(bt.spans, span{wordStart, int32(len(bt.buf))})
			wordStart = -1
		}
	}
	// ASCII bytes (the overwhelming majority of chat text) take a
	// table-driven byte path; everything else decodes one rune at a
	// time. DecodeRuneInString yields one RuneError per invalid byte —
	// exactly what the legacy path sees after strings.ToLower has
	// rewritten invalid bytes to U+FFFD. Classification happens on the
	// lowered rune, as in the legacy code.
	for i := 0; i < len(text); {
		c := text[i]
		if c < utf8.RuneSelf {
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			switch asciiClass[c] {
			case classSpace:
				flush()
			case classPunct:
				flush()
				start := int32(len(bt.buf))
				bt.buf = append(bt.buf, c)
				bt.spans = append(bt.spans, span{start, int32(len(bt.buf))})
			default:
				if wordStart < 0 {
					wordStart = int32(len(bt.buf))
				}
				bt.buf = append(bt.buf, c)
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(text[i:])
		i += size
		r = unicode.ToLower(r)
		switch {
		case unicode.IsSpace(r):
			flush()
		case unicode.IsPunct(r) || unicode.IsSymbol(r):
			flush()
			start := int32(len(bt.buf))
			bt.buf = utf8.AppendRune(bt.buf, r)
			bt.spans = append(bt.spans, span{start, int32(len(bt.buf))})
		default:
			if wordStart < 0 {
				wordStart = int32(len(bt.buf))
			}
			bt.buf = utf8.AppendRune(bt.buf, r)
		}
	}
	flush()

	// Materialise token views only after the arena has reached its final
	// size, so every view points into the same backing array.
	bt.toks = bt.toks[:0]
	for _, sp := range bt.spans {
		bt.toks = append(bt.toks, viewString(bt.buf[sp.start:sp.end]))
	}
	return bt.toks
}

// viewString returns a string sharing b's storage. The caller owns the
// aliasing contract: the bytes must not be mutated while the string is
// live.
func viewString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// Session carries the per-goroutine scratch state for WordPiece
// segmentation with a shared Tokenizer. Steady-state Tokenize calls
// allocate nothing: word splitting reuses the embedded BasicTokenizer
// arena, vocabulary lookups use byte-slice keys, and emitted pieces are
// the vocabulary's interned strings (stable across calls).
//
// A Session is not safe for concurrent use; the returned token slice is
// reused by the next Tokenize call, but its piece strings are stable.
type Session struct {
	t      *Tokenizer
	basic  BasicTokenizer
	out    []string
	bounds []int32 // rune start offsets within the current word
	key    []byte  // lookup key scratch for continuation pieces
}

// NewSession returns a Session bound to the tokenizer's vocabulary.
func (t *Tokenizer) NewSession() *Session {
	return &Session{t: t, key: append(make([]byte, 0, 64), ContinuationPrefix...)}
}

// Tokenize segments text into word pieces — identical output to
// Tokenizer.Tokenize. The returned slice is valid until the next call;
// its elements (interned vocabulary pieces or UnknownToken) are stable.
func (s *Session) Tokenize(text string) []string {
	s.out = s.out[:0]
	for _, word := range s.basic.Tokenize(text) {
		s.appendWordPieces(word)
	}
	return s.out
}

// appendWordPieces segments one lower-cased word with greedy
// longest-match-first, mirroring Tokenizer.tokenizeWord on byte spans
// at rune boundaries instead of a fresh []rune.
func (s *Session) appendWordPieces(word string) {
	s.bounds = s.bounds[:0]
	for i := range word {
		s.bounds = append(s.bounds, int32(i))
	}
	s.bounds = append(s.bounds, int32(len(word)))
	nRunes := len(s.bounds) - 1
	if nRunes > s.t.maxWordChars {
		s.out = append(s.out, UnknownToken)
		return
	}
	outStart := len(s.out)
	start := 0
	for start < nRunes {
		matched := false
		// No candidate longer than the longest vocabulary piece can
		// match, so the greedy search starts there instead of at the
		// full word length (legacy behaviour tried — and failed — every
		// longer candidate first).
		maxEnd := start + s.t.vocab.maxPieceRunes
		if maxEnd > nRunes {
			maxEnd = nRunes
		}
		for end := maxEnd; end > start; end-- {
			seg := word[s.bounds[start]:s.bounds[end]]
			var piece string
			var ok bool
			if start > 0 {
				s.key = append(s.key[:len(ContinuationPrefix)], seg...)
				piece, ok = s.t.vocab.canon(s.key)
			} else {
				piece, ok = s.t.vocab.canonString(seg)
			}
			if ok {
				s.out = append(s.out, piece)
				start = end
				matched = true
				break
			}
		}
		if !matched {
			s.out = append(s.out[:outStart], UnknownToken)
			return
		}
	}
}
