package tokenize

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"harassrepro/internal/randx"
)

func TestBasicTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", ",", "world", "!"}},
		{"", nil},
		{"   ", nil},
		{"a.b", []string{"a", ".", "b"}},
		{"e-mail @user #tag", []string{"e", "-", "mail", "@", "user", "#", "tag"}},
		{"MiXeD CaSe", []string{"mixed", "case"}},
		{"tabs\tand\nnewlines", []string{"tabs", "and", "newlines"}},
		{"don't", []string{"don", "'", "t"}},
	}
	for _, c := range cases {
		if got := BasicTokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("BasicTokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestBasicTokenizeNeverEmptyTokens(t *testing.T) {
	err := quick.Check(func(s string) bool {
		for _, tok := range BasicTokenize(s) {
			if tok == "" {
				return false
			}
			if strings.ToLower(tok) != tok {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestTrainAndTokenizeRoundTrip(t *testing.T) {
	corpus := []string{
		"harassment harassing harassed harass",
		"report reporting reported reports",
		"the harasser keeps harassing and reporting",
		"mass reporting of harassment reports",
	}
	v := Train(corpus, TrainerConfig{VocabSize: 200})
	if v.Size() == 0 {
		t.Fatal("empty vocabulary")
	}
	tok := NewTokenizer(v)
	pieces := tok.Tokenize("harassment reporting")
	if len(pieces) == 0 {
		t.Fatal("no pieces")
	}
	// Reassembling pieces should reconstruct the input words.
	var rebuilt strings.Builder
	for _, p := range pieces {
		if p == UnknownToken {
			t.Fatalf("in-corpus word tokenized to UNK: %v", pieces)
		}
		rebuilt.WriteString(strings.TrimPrefix(p, ContinuationPrefix))
	}
	if rebuilt.String() != "harassmentreporting" {
		t.Errorf("round trip got %q from %v", rebuilt.String(), pieces)
	}
}

func TestTrainLearnsSubwords(t *testing.T) {
	// Very frequent pair should merge into a multi-char piece.
	corpus := make([]string, 50)
	for i := range corpus {
		corpus[i] = "doxing doxed doxes dox"
	}
	v := Train(corpus, TrainerConfig{VocabSize: 100})
	multi := 0
	for _, p := range v.Pieces() {
		if len(strings.TrimPrefix(p, ContinuationPrefix)) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("training produced no multi-character pieces")
	}
}

func TestTrainDeterministic(t *testing.T) {
	corpus := []string{"alpha beta gamma delta", "beta gamma", "alpha alpha gamma"}
	v1 := Train(corpus, TrainerConfig{VocabSize: 50})
	v2 := Train(corpus, TrainerConfig{VocabSize: 50})
	if !reflect.DeepEqual(v1.Pieces(), v2.Pieces()) {
		t.Error("training is not deterministic")
	}
}

func TestTokenizeUnknownWord(t *testing.T) {
	v := NewVocab([]string{"a", "b", "##b"})
	tok := NewTokenizer(v)
	got := tok.Tokenize("abz")
	if !reflect.DeepEqual(got, []string{UnknownToken}) {
		t.Errorf("unsegmentable word = %v, want [UNK]", got)
	}
	got = tok.Tokenize("ab")
	if !reflect.DeepEqual(got, []string{"a", "##b"}) {
		t.Errorf("ab = %v", got)
	}
}

func TestTokenizeGreedyLongestMatch(t *testing.T) {
	v := NewVocab([]string{"un", "unhappy", "##happy", "##h", "##appy"})
	tok := NewTokenizer(v)
	got := tok.Tokenize("unhappy")
	if !reflect.DeepEqual(got, []string{"unhappy"}) {
		t.Errorf("greedy match = %v, want [unhappy]", got)
	}
}

func TestTokenizeVeryLongWord(t *testing.T) {
	v := NewVocab([]string{"a"})
	tok := NewTokenizer(v)
	long := strings.Repeat("a", 500)
	got := tok.Tokenize(long)
	if !reflect.DeepEqual(got, []string{UnknownToken}) {
		t.Errorf("very long word = %v, want [UNK]", got)
	}
}

func makeTokens(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = strings.Repeat("t", 1+i%3)
	}
	return out
}

func TestSpansShortDocument(t *testing.T) {
	rng := randx.New(1)
	toks := makeTokens(10)
	for _, s := range []SpanStrategy{SpanRandomNoOverlap, SpanBeginEnd, SpanOverlapping, SpanRandomLength} {
		spans := Spans(toks, 128, 4, s, rng)
		if len(spans) != 1 || len(spans[0]) != 10 {
			t.Errorf("%v: short doc spans = %d", s, len(spans))
		}
	}
}

func TestSpansRandomNoOverlapCoversDistinctAreas(t *testing.T) {
	rng := randx.New(2)
	// 1000 tokens, maxLen 100 -> 10 chunks; request 5 spans.
	toks := make([]string, 1000)
	for i := range toks {
		toks[i] = string(rune('a' + i%26))
	}
	spans := Spans(toks, 100, 5, SpanRandomNoOverlap, rng)
	if len(spans) != 5 {
		t.Fatalf("got %d spans, want 5", len(spans))
	}
	total := 0
	for _, sp := range spans {
		if len(sp) > 100 {
			t.Errorf("span too long: %d", len(sp))
		}
		total += len(sp)
	}
	if total > 500 {
		t.Errorf("overlapping content: total span tokens %d", total)
	}
}

func TestSpansBeginEnd(t *testing.T) {
	rng := randx.New(3)
	toks := make([]string, 300)
	for i := range toks {
		toks[i] = string(rune('a' + i%26))
	}
	spans := Spans(toks, 100, 2, SpanBeginEnd, rng)
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0][0] != toks[0] || spans[1][99] != toks[299] {
		t.Error("begin-end spans not anchored at document boundaries")
	}
	one := Spans(toks, 100, 1, SpanBeginEnd, rng)
	if len(one) != 1 {
		t.Errorf("maxSpans=1 returned %d spans", len(one))
	}
}

func TestSpansOverlapping(t *testing.T) {
	rng := randx.New(4)
	toks := makeTokens(250)
	spans := Spans(toks, 100, 10, SpanOverlapping, rng)
	// Starts at 0, 50, 100, 150; the span at 150 reaches the end (250),
	// completing coverage -> 4 spans with 50% overlap.
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	if len(spans[3]) != 100 {
		t.Errorf("tail span length = %d, want 100", len(spans[3]))
	}
}

func TestSpansRandomLengthBounds(t *testing.T) {
	rng := randx.New(5)
	toks := makeTokens(1000)
	spans := Spans(toks, 100, 20, SpanRandomLength, rng)
	if len(spans) != 20 {
		t.Fatalf("got %d spans", len(spans))
	}
	for _, sp := range spans {
		if len(sp) < 50 || len(sp) > 100 {
			t.Errorf("random-length span length %d outside [50,100]", len(sp))
		}
	}
}

func TestSpansPropertyNoOverlapWithinBudget(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw, maxLenRaw uint16) bool {
		n := 1 + int(nRaw%2000)
		maxLen := 1 + int(maxLenRaw%300)
		rng := randx.New(seed)
		toks := makeTokens(n)
		spans := Spans(toks, maxLen, 3, SpanRandomNoOverlap, rng)
		if len(spans) == 0 || len(spans) > 3 {
			// Short docs return one span; long docs must respect maxSpans.
			return false
		}
		for _, sp := range spans {
			if n > maxLen && len(sp) > maxLen {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTruncate(t *testing.T) {
	toks := makeTokens(10)
	if got := Truncate(toks, 3); len(got) != 3 {
		t.Errorf("Truncate = %d tokens", len(got))
	}
	if got := Truncate(toks, 0); len(got) != 10 {
		t.Errorf("Truncate(0) should not truncate, got %d", len(got))
	}
	if got := Truncate(toks, 100); len(got) != 10 {
		t.Errorf("Truncate beyond length = %d", len(got))
	}
}

func TestSpanStrategyString(t *testing.T) {
	names := map[SpanStrategy]string{
		SpanRandomNoOverlap: "random-no-overlap",
		SpanBeginEnd:        "begin-end",
		SpanOverlapping:     "overlapping",
		SpanRandomLength:    "random-length",
		SpanStrategy(99):    "unknown",
	}
	for s, want := range names {
		if got := s.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", s, got, want)
		}
	}
}

func BenchmarkTrain(b *testing.B) {
	corpus := make([]string, 100)
	for i := range corpus {
		corpus[i] = "the quick brown fox jumps over the lazy dog while reporting harassment online"
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(corpus, TrainerConfig{VocabSize: 500})
	}
}

func BenchmarkTokenize(b *testing.B) {
	corpus := []string{"mass reporting of harassment and doxing on image boards"}
	v := Train(corpus, TrainerConfig{VocabSize: 200})
	tok := NewTokenizer(v)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tok.Tokenize("mass reporting of harassment and doxing on image boards")
	}
}
