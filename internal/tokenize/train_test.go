package tokenize

// Golden equivalence for the incremental WordPiece trainer.
// referenceTrain is a verbatim copy of the textbook implementation
// (full pair recount + sort per merge); the shipped Train must produce
// an identical vocabulary on every corpus and configuration, because
// trained vocabularies feed every downstream classifier and threshold
// in the pipeline and those outputs are pinned byte-for-byte.

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// referenceTrain is the legacy Train, kept verbatim.
func referenceTrain(corpus []string, cfg TrainerConfig) *Vocab {
	cfg.fillDefaults()

	wordFreq := map[string]int{}
	for _, doc := range corpus {
		for _, w := range BasicTokenize(doc) {
			if len(w) > cfg.MaxWordLength {
				w = w[:cfg.MaxWordLength]
			}
			wordFreq[w]++
		}
	}

	type segWord struct {
		pieces []string
		freq   int
	}
	words := make([]segWord, 0, len(wordFreq))
	sortedWords := make([]string, 0, len(wordFreq))
	for w := range wordFreq {
		sortedWords = append(sortedWords, w)
	}
	sort.Strings(sortedWords)

	pieceFreq := map[string]int{}
	for _, w := range sortedWords {
		runes := []rune(w)
		pieces := make([]string, len(runes))
		for i, r := range runes {
			p := string(r)
			if i > 0 {
				p = ContinuationPrefix + p
			}
			pieces[i] = p
		}
		words = append(words, segWord{pieces: pieces, freq: wordFreq[w]})
		for _, p := range pieces {
			pieceFreq[p] += wordFreq[w]
		}
	}

	for len(pieceFreq) < cfg.VocabSize {
		type pair struct{ a, b string }
		pairFreq := map[pair]int{}
		for _, w := range words {
			for i := 0; i+1 < len(w.pieces); i++ {
				pairFreq[pair{w.pieces[i], w.pieces[i+1]}] += w.freq
			}
		}
		var best pair
		bestScore := -1.0
		found := false
		keys := make([]pair, 0, len(pairFreq))
		for p := range pairFreq {
			keys = append(keys, p)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].a != keys[j].a {
				return keys[i].a < keys[j].a
			}
			return keys[i].b < keys[j].b
		})
		for _, p := range keys {
			f := pairFreq[p]
			if f < cfg.MinPairFrequency {
				continue
			}
			score := float64(f) / (float64(pieceFreq[p.a]) * float64(pieceFreq[p.b]))
			if score > bestScore {
				bestScore = score
				best = p
				found = true
			}
		}
		if !found {
			break
		}
		merged := best.a + strings.TrimPrefix(best.b, ContinuationPrefix)
		for wi := range words {
			w := &words[wi]
			for i := 0; i+1 < len(w.pieces); i++ {
				if w.pieces[i] == best.a && w.pieces[i+1] == best.b {
					pieceFreq[best.a] -= w.freq
					pieceFreq[best.b] -= w.freq
					pieceFreq[merged] += w.freq
					w.pieces[i] = merged
					w.pieces = append(w.pieces[:i+1], w.pieces[i+2:]...)
					i--
				}
			}
		}
		if _, ok := pieceFreq[merged]; !ok {
			break
		}
	}

	pieces := make([]string, 0, len(pieceFreq))
	for p, f := range pieceFreq {
		if f > 0 {
			pieces = append(pieces, p)
		}
	}
	return NewVocab(pieces)
}

// trainCorpora covers the shapes that exercise the trainer's edge
// cases: overlapping self-pairs, unicode, pathological long words,
// punctuation splitting, and a larger pseudo-natural mix.
func trainCorpora() map[string][]string {
	big := make([]string, 0, 400)
	words := []string{
		"report", "reporting", "reported", "mass", "flagging", "flag",
		"harass", "harassment", "target", "targets", "doxing", "dox",
		"twitter", "account", "accounts", "spread", "word", "tonight",
		"street", "address", "phone", "email", "the", "and", "his", "her",
	}
	for i := 0; i < 400; i++ {
		var sb strings.Builder
		for j := 0; j < 12; j++ {
			sb.WriteString(words[(i*7+j*13)%len(words)])
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "msg-%d!", i%37)
		big = append(big, sb.String())
	}
	return map[string][]string{
		"empty":      nil,
		"single":     {"aaaa aaaa aaaa"},
		"self-pairs": {"aaa aaaa aaaaa bbb abab ababab", "aaa bbb abab"},
		"unicode":    {"İstanbul naïve 東京 東京タワー cœur cœurs", "naïve cœur 東京 東京"},
		"longwords":  {strings.Repeat("ab", 80) + " " + strings.Repeat("ab", 80) + " short short"},
		"mixed":      big,
	}
}

func TestTrainMatchesReference(t *testing.T) {
	configs := []TrainerConfig{
		{},
		{VocabSize: 60},
		{VocabSize: 200, MinPairFrequency: 1},
		{VocabSize: 500, MinPairFrequency: 3, MaxWordLength: 16},
	}
	for name, corpus := range trainCorpora() {
		for _, cfg := range configs {
			got := Train(corpus, cfg)
			want := referenceTrain(corpus, cfg)
			if g, w := got.Pieces(), want.Pieces(); !equalStrings(g, w) {
				t.Errorf("%s %+v: vocab diverged\n got (%d): %v\nwant (%d): %v",
					name, cfg, len(g), g, len(w), w)
			}
		}
	}
}

// TestTrainDeterministicTieHeavy pins run-to-run stability on a corpus
// with many score ties (the regime where tie-breaking order matters).
func TestTrainDeterministicTieHeavy(t *testing.T) {
	corpus := trainCorpora()["mixed"]
	cfg := TrainerConfig{VocabSize: 300}
	first := Train(corpus, cfg).Pieces()
	for i := 0; i < 3; i++ {
		if again := Train(corpus, cfg).Pieces(); !equalStrings(first, again) {
			t.Fatalf("run %d: vocab not deterministic", i)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
