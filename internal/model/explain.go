package model

import (
	"sort"

	"harassrepro/internal/features"
)

// Feature hashing is one-way: bucket indices cannot be inverted back to
// n-grams. Explanation therefore works forward: given the tokens of a
// document, each token's (and bigram's) learned weight is looked up
// through the same hash, attributing the classifier's margin to the
// input's own n-grams — the standard linear-model explanation.

// TokenWeight is one n-gram's contribution to a classifier decision.
type TokenWeight struct {
	// NGram is the unigram or "a b" bigram text.
	NGram string
	// Weight is the learned coefficient (counts multiplied in).
	Weight float64
}

// Explain attributes the model's decision on the token sequence to its
// n-grams, returning contributions sorted by descending absolute weight.
// The hasher must be the one used at training time. topK <= 0 returns
// all contributions.
func Explain(m *LogReg, hasher *features.Hasher, tokens []string, topK int) []TokenWeight {
	contrib := map[string]float64{}
	addNGram := func(ngram string, v features.Vector) {
		w := 0.0
		for i, idx := range v.Indices {
			if int(idx) < len(m.weights) {
				w += v.Values[i] * m.weights[idx]
			}
		}
		contrib[ngram] += w
	}
	for _, tok := range tokens {
		addNGram(tok, hasher.Vectorize([]string{tok}))
	}
	// Bigrams: vectorizing a pair includes its unigrams too, so isolate
	// the bigram bucket by subtracting the unigram contributions.
	for i := 0; i+1 < len(tokens); i++ {
		pair := hasher.Vectorize(tokens[i : i+2])
		w := pair.Dot(m.weights)
		w -= hasher.Vectorize(tokens[i : i+1]).Dot(m.weights)
		w -= hasher.Vectorize(tokens[i+1 : i+2]).Dot(m.weights)
		if w != 0 {
			contrib[tokens[i]+" "+tokens[i+1]] += w
		}
	}

	out := make([]TokenWeight, 0, len(contrib))
	for ng, w := range contrib {
		out = append(out, TokenWeight{NGram: ng, Weight: w})
	}
	sort.Slice(out, func(a, b int) bool {
		wa, wb := abs(out[a].Weight), abs(out[b].Weight)
		if wa != wb {
			return wa > wb
		}
		return out[a].NGram < out[b].NGram
	})
	if topK > 0 && len(out) > topK {
		out = out[:topK]
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
