package model

import "math"

// The threshold-selection procedure (§5.5) interprets classifier scores
// as probabilities; its behaviour depends on how well calibrated they
// are. Calibration quantifies that: reliability bins, expected
// calibration error and the Brier score.

// CalibrationBin is one reliability-diagram bin.
type CalibrationBin struct {
	// Lo and Hi bound the predicted-probability range [Lo, Hi).
	Lo, Hi float64
	// Count is the number of predictions in the bin.
	Count int
	// MeanPredicted is the average predicted probability in the bin.
	MeanPredicted float64
	// FractionPositive is the empirical positive rate in the bin.
	FractionPositive float64
}

// CalibrationReport summarises score calibration.
type CalibrationReport struct {
	Bins []CalibrationBin
	// ECE is the expected calibration error: the prediction-weighted
	// mean absolute gap between predicted probability and empirical
	// positive rate.
	ECE float64
	// Brier is the mean squared error of the probabilistic predictions.
	Brier float64
}

// Calibrate evaluates scorer s over the examples with the given number
// of equal-width probability bins (10 matches the paper's active-
// learning strata).
func Calibrate(s Scorer, examples []Example, bins int) CalibrationReport {
	if bins <= 0 {
		bins = 10
	}
	type acc struct {
		n    int
		pSum float64
		pos  int
	}
	accs := make([]acc, bins)
	brierSum := 0.0
	for _, ex := range examples {
		p := s.Score(ex.X)
		b := int(p * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		accs[b].n++
		accs[b].pSum += p
		y := 0.0
		if ex.Y {
			accs[b].pos++
			y = 1
		}
		d := p - y
		brierSum += d * d
	}
	rep := CalibrationReport{}
	total := len(examples)
	for i, a := range accs {
		bin := CalibrationBin{
			Lo: float64(i) / float64(bins),
			Hi: float64(i+1) / float64(bins),
		}
		if a.n > 0 {
			bin.Count = a.n
			bin.MeanPredicted = a.pSum / float64(a.n)
			bin.FractionPositive = float64(a.pos) / float64(a.n)
			rep.ECE += float64(a.n) / float64(total) * math.Abs(bin.MeanPredicted-bin.FractionPositive)
		}
		rep.Bins = append(rep.Bins, bin)
	}
	if total > 0 {
		rep.Brier = brierSum / float64(total)
	}
	return rep
}
