package model

import (
	"math"
	"testing"

	"harassrepro/internal/features"
	"harassrepro/internal/randx"
)

// synthExamples builds a linearly separable-ish two-cluster problem:
// positives use tokens from posVocab, negatives from negVocab, with some
// shared noise tokens.
func synthExamples(n int, seed uint64, h *features.Hasher) []Example {
	rng := randx.New(seed)
	posVocab := []string{"report", "raid", "dox", "spam", "mass", "flag"}
	negVocab := []string{"cat", "lunch", "game", "music", "movie", "coffee"}
	shared := []string{"the", "a", "and", "today", "we"}
	out := make([]Example, 0, n)
	for i := 0; i < n; i++ {
		y := i%2 == 0
		vocab := negVocab
		if y {
			vocab = posVocab
		}
		toks := make([]string, 0, 12)
		for j := 0; j < 8; j++ {
			toks = append(toks, randx.Pick(rng, vocab))
		}
		for j := 0; j < 4; j++ {
			toks = append(toks, randx.Pick(rng, shared))
		}
		out = append(out, Example{X: h.Vectorize(toks), Y: y})
	}
	return out
}

func TestLogRegLearnsSeparableProblem(t *testing.T) {
	h := features.NewHasher(features.HasherConfig{Buckets: 1 << 14})
	train := synthExamples(400, 1, h)
	test := synthExamples(200, 2, h)
	m, err := TrainLogReg(train, LogRegConfig{Buckets: 1 << 14, Epochs: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep := Evaluate(m, test, 0.5, "pos", "neg")
	if rep.Positive.F1 < 0.95 {
		t.Fatalf("F1 = %v on separable problem", rep.Positive.F1)
	}
	if rep.AUC < 0.99 {
		t.Fatalf("AUC = %v on separable problem", rep.AUC)
	}
}

func TestLogRegScoreIsProbability(t *testing.T) {
	h := features.NewHasher(features.HasherConfig{Buckets: 1 << 14})
	train := synthExamples(100, 4, h)
	m, err := TrainLogReg(train, LogRegConfig{Buckets: 1 << 14, Epochs: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range train {
		p := m.Score(ex.X)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("score out of [0,1]: %v", p)
		}
	}
}

func TestLogRegDeterministic(t *testing.T) {
	h := features.NewHasher(features.HasherConfig{Buckets: 1 << 12})
	train := synthExamples(100, 6, h)
	m1, _ := TrainLogReg(train, LogRegConfig{Buckets: 1 << 12, Seed: 7})
	m2, _ := TrainLogReg(train, LogRegConfig{Buckets: 1 << 12, Seed: 7})
	probe := synthExamples(10, 8, h)
	for _, ex := range probe {
		if m1.Score(ex.X) != m2.Score(ex.X) {
			t.Fatal("training not deterministic for fixed seed")
		}
	}
}

func TestLogRegEmptyTraining(t *testing.T) {
	if _, err := TrainLogReg(nil, LogRegConfig{}); err != ErrNoTrainingData {
		t.Fatalf("err = %v", err)
	}
}

func TestLogRegClassWeighting(t *testing.T) {
	// Heavily imbalanced data: without weighting, recall suffers; with
	// positive weighting, recall should improve.
	h := features.NewHasher(features.HasherConfig{Buckets: 1 << 14})
	rng := randx.New(9)
	var train []Example
	// 5% positives with a weak signal (overlapping vocab).
	vocabPos := []string{"report", "flag", "the", "we", "today", "game"}
	vocabNeg := []string{"cat", "game", "the", "we", "today", "music"}
	for i := 0; i < 2000; i++ {
		y := i%20 == 0
		vocab := vocabNeg
		if y {
			vocab = vocabPos
		}
		toks := make([]string, 6)
		for j := range toks {
			toks[j] = randx.Pick(rng, vocab)
		}
		train = append(train, Example{X: h.Vectorize(toks), Y: y})
	}
	unweighted, _ := TrainLogReg(train, LogRegConfig{Buckets: 1 << 14, Epochs: 3, Seed: 1})
	weighted, _ := TrainLogReg(train, LogRegConfig{Buckets: 1 << 14, Epochs: 3, Seed: 1, ClassWeightPositive: 10})
	ru := Evaluate(unweighted, train, 0.5, "p", "n")
	rw := Evaluate(weighted, train, 0.5, "p", "n")
	if rw.Positive.Recall < ru.Positive.Recall {
		t.Fatalf("class weighting reduced recall: %v -> %v", ru.Positive.Recall, rw.Positive.Recall)
	}
}

func TestLogRegLossDecreases(t *testing.T) {
	h := features.NewHasher(features.HasherConfig{Buckets: 1 << 14})
	train := synthExamples(300, 10, h)
	short, _ := TrainLogReg(train, LogRegConfig{Buckets: 1 << 14, Epochs: 1, Seed: 11})
	long, _ := TrainLogReg(train, LogRegConfig{Buckets: 1 << 14, Epochs: 10, Seed: 11})
	if long.Loss(train) > short.Loss(train) {
		t.Fatalf("more epochs increased loss: %v -> %v", short.Loss(train), long.Loss(train))
	}
	if !math.IsNaN(long.Loss(nil)) {
		t.Fatal("Loss of empty set should be NaN")
	}
}

func TestNaiveBayesLearnsSeparableProblem(t *testing.T) {
	h := features.NewHasher(features.HasherConfig{Buckets: 1 << 14})
	train := synthExamples(400, 12, h)
	test := synthExamples(200, 13, h)
	nb, err := TrainNaiveBayes(train, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	var conf Confusion
	for _, ex := range test {
		conf.Add(nb.Predict(ex.X), ex.Y)
	}
	if conf.F1() < 0.95 {
		t.Fatalf("NB F1 = %v", conf.F1())
	}
}

func TestNaiveBayesSingleClass(t *testing.T) {
	h := features.NewHasher(features.HasherConfig{Buckets: 1 << 12})
	var train []Example
	for i := 0; i < 10; i++ {
		train = append(train, Example{X: h.Vectorize([]string{"benign"}), Y: false})
	}
	nb, err := TrainNaiveBayes(train, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	p := nb.Score(h.Vectorize([]string{"benign"}))
	if p > 0.5 {
		t.Fatalf("all-negative training scored positive: %v", p)
	}
}

func TestNaiveBayesEmptyTraining(t *testing.T) {
	if _, err := TrainNaiveBayes(nil, 1024); err != ErrNoTrainingData {
		t.Fatalf("err = %v", err)
	}
}

func TestConfusionMetrics(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, FN: 4, TN: 86}
	if got := c.Precision(); got != 0.8 {
		t.Errorf("Precision = %v", got)
	}
	if got := c.Recall(); !almost(got, 8.0/12.0) {
		t.Errorf("Recall = %v", got)
	}
	wantF1 := 2 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0/12.0)
	if got := c.F1(); !almost(got, wantF1) {
		t.Errorf("F1 = %v, want %v", got, wantF1)
	}
	if got := c.Accuracy(); got != 0.94 {
		t.Errorf("Accuracy = %v", got)
	}
	inv := c.Invert()
	if inv.TP != 86 || inv.FN != 2 || inv.FP != 4 {
		t.Errorf("Invert = %+v", inv)
	}
}

func TestConfusionEmpty(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.Accuracy() != 0 {
		t.Error("empty confusion should produce zeros")
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestAUCROCKnown(t *testing.T) {
	// Perfect ranking.
	if got := AUCROC([]float64{0.1, 0.2, 0.8, 0.9}, []bool{false, false, true, true}); got != 1 {
		t.Errorf("perfect AUC = %v", got)
	}
	// Inverted ranking.
	if got := AUCROC([]float64{0.9, 0.8, 0.2, 0.1}, []bool{false, false, true, true}); got != 0 {
		t.Errorf("inverted AUC = %v", got)
	}
	// All tied scores -> 0.5 by midranks.
	if got := AUCROC([]float64{0.5, 0.5, 0.5, 0.5}, []bool{false, true, false, true}); got != 0.5 {
		t.Errorf("tied AUC = %v", got)
	}
	// Single class -> NaN.
	if got := AUCROC([]float64{0.5, 0.7}, []bool{true, true}); !math.IsNaN(got) {
		t.Errorf("single-class AUC = %v", got)
	}
	if got := AUCROC(nil, nil); !math.IsNaN(got) {
		t.Errorf("empty AUC = %v", got)
	}
}

func TestAUCROCHandComputed(t *testing.T) {
	// scores: pos {0.8, 0.4}, neg {0.6, 0.2}.
	// Pairs: (0.8>0.6)=1, (0.8>0.2)=1, (0.4<0.6)=0, (0.4>0.2)=1 -> 3/4.
	got := AUCROC([]float64{0.8, 0.4, 0.6, 0.2}, []bool{true, true, false, false})
	if got != 0.75 {
		t.Errorf("AUC = %v, want 0.75", got)
	}
}

func TestEvaluateReportStructure(t *testing.T) {
	h := features.NewHasher(features.HasherConfig{Buckets: 1 << 14})
	train := synthExamples(200, 14, h)
	m, _ := TrainLogReg(train, LogRegConfig{Buckets: 1 << 14, Seed: 15})
	rep := Evaluate(m, train, 0.5, "Dox", "No Dox")
	if rep.Positive.Label != "Dox" || rep.Negative.Label != "No Dox" {
		t.Error("labels not propagated")
	}
	if rep.Positive.Support+rep.Negative.Support != 200 {
		t.Errorf("support totals = %d + %d", rep.Positive.Support, rep.Negative.Support)
	}
	// Macro = unweighted mean.
	if !almost(rep.MacroAvg.F1, (rep.Positive.F1+rep.Negative.F1)/2) {
		t.Error("macro F1 mismatch")
	}
	// Balanced classes: weighted == macro.
	if !almost(rep.WeightedAvg.F1, rep.MacroAvg.F1) {
		t.Error("balanced weighted != macro")
	}
}

func TestPrecisionAtThreshold(t *testing.T) {
	h := features.NewHasher(features.HasherConfig{Buckets: 1 << 14})
	train := synthExamples(400, 16, h)
	m, _ := TrainLogReg(train, LogRegConfig{Buckets: 1 << 14, Seed: 17})
	p50, n50 := PrecisionAtThreshold(m, train, 0.5)
	p90, n90 := PrecisionAtThreshold(m, train, 0.9)
	if n90 > n50 {
		t.Errorf("higher threshold selected more: %d > %d", n90, n50)
	}
	if p90 < p50-1e-9 {
		t.Errorf("higher threshold reduced precision: %v -> %v", p50, p90)
	}
}

func TestKFold(t *testing.T) {
	folds := KFold(103, 5, 42)
	if len(folds) != 5 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := map[int]int{}
	for _, f := range folds {
		train, test := f[0], f[1]
		if len(train)+len(test) != 103 {
			t.Fatalf("fold sizes %d + %d != 103", len(train), len(test))
		}
		inTest := map[int]bool{}
		for _, i := range test {
			seen[i]++
			inTest[i] = true
		}
		for _, i := range train {
			if inTest[i] {
				t.Fatal("index in both train and test")
			}
		}
	}
	if len(seen) != 103 {
		t.Fatalf("test folds cover %d of 103 indices", len(seen))
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d appears in %d test folds", i, c)
		}
	}
}

func TestKFoldDegenerate(t *testing.T) {
	folds := KFold(3, 10, 1)
	if len(folds) != 3 {
		t.Fatalf("k clamped to n: %d", len(folds))
	}
	folds = KFold(10, 1, 1)
	if len(folds) != 2 {
		t.Fatalf("k floor of 2: %d", len(folds))
	}
}

func BenchmarkTrainLogReg(b *testing.B) {
	h := features.NewHasher(features.HasherConfig{Buckets: 1 << 16})
	train := synthExamples(1000, 1, h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrainLogReg(train, LogRegConfig{Buckets: 1 << 16, Epochs: 3, Seed: 1})
	}
}

func BenchmarkScore(b *testing.B) {
	h := features.NewHasher(features.HasherConfig{Buckets: 1 << 16})
	train := synthExamples(200, 1, h)
	m, _ := TrainLogReg(train, LogRegConfig{Buckets: 1 << 16, Seed: 1})
	x := train[0].X
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Score(x)
	}
}
