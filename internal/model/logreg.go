// Package model implements the filtering classifiers and their evaluation
// metrics. The paper fine-tunes distilBERT; this reproduction substitutes
// an L2-regularised logistic regression over hashed sub-word features
// (see DESIGN.md §1) plus a multinomial naive Bayes baseline, and keeps
// the same evaluation surface: per-label precision/recall/F1 with
// weighted and macro averages (Table 3) and AUC-ROC for hyperparameter
// optimisation (§5.4).
package model

import (
	"errors"
	"math"

	"harassrepro/internal/features"
	"harassrepro/internal/randx"
)

// ErrNoTrainingData is returned when Fit is called without examples.
var ErrNoTrainingData = errors.New("model: no training data")

// Example is one labelled training instance.
type Example struct {
	X features.Vector
	Y bool // true = positive class (dox / call to harassment)
}

// Scorer produces a positive-class probability for a feature vector.
// Both classifier families implement it, as does the calibrated wrapper.
type Scorer interface {
	Score(x features.Vector) float64
}

// LogRegConfig configures logistic regression training.
type LogRegConfig struct {
	// Buckets is the feature space dimension (must match the hasher).
	Buckets uint32
	// Epochs over the training set. Defaults to 10.
	Epochs int
	// LearningRate is the initial SGD step size. Defaults to 0.5.
	LearningRate float64
	// L2 is the ridge penalty. Defaults to 1e-6.
	L2 float64
	// ClassWeightPositive scales the gradient of positive examples,
	// counteracting the extreme class imbalance of the filtering task
	// (positives are <5% of annotations, Table 2). Defaults to 1.
	ClassWeightPositive float64
	// Seed drives example shuffling.
	Seed uint64
}

func (c *LogRegConfig) fillDefaults() {
	if c.Buckets == 0 {
		c.Buckets = 1 << 18
	}
	if c.Epochs <= 0 {
		c.Epochs = 10
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.5
	}
	if c.L2 < 0 {
		c.L2 = 0
	} else if c.L2 == 0 {
		c.L2 = 1e-6
	}
	if c.ClassWeightPositive <= 0 {
		c.ClassWeightPositive = 1
	}
}

// LogReg is a binary logistic regression classifier.
type LogReg struct {
	weights []float64
	bias    float64
	cfg     LogRegConfig
}

// TrainLogReg fits logistic regression on the examples with SGD.
func TrainLogReg(examples []Example, cfg LogRegConfig) (*LogReg, error) {
	cfg.fillDefaults()
	if len(examples) == 0 {
		return nil, ErrNoTrainingData
	}
	m := &LogReg{
		weights: make([]float64, cfg.Buckets),
		bias:    0,
		cfg:     cfg,
	}
	rng := randx.New(cfg.Seed)
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	step := cfg.LearningRate
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		randx.Shuffle(rng, order)
		// 1/t learning-rate decay.
		step = cfg.LearningRate / (1 + float64(epoch))
		for _, i := range order {
			ex := examples[i]
			p := m.Score(ex.X)
			target := 0.0
			w := 1.0
			if ex.Y {
				target = 1
				w = cfg.ClassWeightPositive
			}
			g := w * (p - target) // d(logloss)/d(margin)
			for j, idx := range ex.X.Indices {
				m.weights[idx] -= step * (g*ex.X.Values[j] + cfg.L2*m.weights[idx])
			}
			m.bias -= step * g
		}
	}
	return m, nil
}

// Score returns the positive-class probability sigma(w.x + b).
func (m *LogReg) Score(x features.Vector) float64 {
	return sigmoid(x.Dot(m.weights) + m.bias)
}

// Predict returns the hard label at the 0.5 threshold.
func (m *LogReg) Predict(x features.Vector) bool {
	return m.Score(x) > 0.5
}

// Loss returns the mean regularised log-loss over the examples, used by
// training diagnostics and the hyperparameter sweep.
func (m *LogReg) Loss(examples []Example) float64 {
	if len(examples) == 0 {
		return math.NaN()
	}
	const eps = 1e-12
	sum := 0.0
	for _, ex := range examples {
		p := m.Score(ex.X)
		if ex.Y {
			sum += -math.Log(math.Max(p, eps))
		} else {
			sum += -math.Log(math.Max(1-p, eps))
		}
	}
	return sum / float64(len(examples))
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// NaiveBayes is a multinomial naive Bayes classifier with Laplace
// smoothing, the classical fast baseline for text filtering.
type NaiveBayes struct {
	logPrior    [2]float64
	logLik      [2]map[uint32]float64
	logLikMiss  [2]float64
	totalMass   [2]float64
	vocabSize   float64
	smoothAlpha float64
}

// TrainNaiveBayes fits the baseline on the examples. buckets is the hashed
// feature space size (the smoothing denominator).
func TrainNaiveBayes(examples []Example, buckets uint32) (*NaiveBayes, error) {
	if len(examples) == 0 {
		return nil, ErrNoTrainingData
	}
	nb := &NaiveBayes{
		logLik:      [2]map[uint32]float64{{}, {}},
		vocabSize:   float64(buckets),
		smoothAlpha: 1,
	}
	var classDocs [2]float64
	var counts [2]map[uint32]float64
	counts[0], counts[1] = map[uint32]float64{}, map[uint32]float64{}
	for _, ex := range examples {
		c := 0
		if ex.Y {
			c = 1
		}
		classDocs[c]++
		for j, idx := range ex.X.Indices {
			v := ex.X.Values[j]
			if v < 0 {
				v = -v // signed hashing: use magnitude as occurrence mass
			}
			counts[c][idx] += v
			nb.totalMass[c] += v
		}
	}
	total := classDocs[0] + classDocs[1]
	for c := 0; c < 2; c++ {
		// Unseen classes get a tiny prior rather than -Inf.
		if classDocs[c] == 0 {
			nb.logPrior[c] = math.Log(0.5 / (total + 1))
		} else {
			nb.logPrior[c] = math.Log(classDocs[c] / total)
		}
		denom := nb.totalMass[c] + nb.smoothAlpha*nb.vocabSize
		for idx, cnt := range counts[c] {
			nb.logLik[c][idx] = math.Log((cnt + nb.smoothAlpha) / denom)
		}
		nb.logLikMiss[c] = math.Log(nb.smoothAlpha / denom)
	}
	return nb, nil
}

// Score returns the positive-class posterior probability.
func (nb *NaiveBayes) Score(x features.Vector) float64 {
	var logp [2]float64
	for c := 0; c < 2; c++ {
		lp := nb.logPrior[c]
		for j, idx := range x.Indices {
			v := x.Values[j]
			if v < 0 {
				v = -v
			}
			ll, ok := nb.logLik[c][idx]
			if !ok {
				ll = nb.logLikMiss[c]
			}
			lp += v * ll
		}
		logp[c] = lp
	}
	// Softmax over the two log-posteriors.
	m := math.Max(logp[0], logp[1])
	p0 := math.Exp(logp[0] - m)
	p1 := math.Exp(logp[1] - m)
	return p1 / (p0 + p1)
}

// Predict returns the hard label at the 0.5 threshold.
func (nb *NaiveBayes) Predict(x features.Vector) bool {
	return nb.Score(x) > 0.5
}
