package model

import (
	"strings"
	"testing"

	"harassrepro/internal/features"
)

func TestExplainAttributesSignalTokens(t *testing.T) {
	h := features.NewHasher(features.HasherConfig{Buckets: 1 << 14, Bigrams: true})
	train := synthExamples(600, 31, h)
	m, err := TrainLogReg(train, LogRegConfig{Buckets: 1 << 14, Epochs: 5, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	// "report" and "dox" are positive-vocabulary tokens in synthExamples;
	// "cat" and "coffee" negative. Their learned weights must separate.
	tw := Explain(m, h, []string{"report", "dox", "cat", "coffee", "the"}, 0)
	byNGram := map[string]float64{}
	for _, x := range tw {
		byNGram[x.NGram] = x.Weight
	}
	if byNGram["report"] <= 0 || byNGram["dox"] <= 0 {
		t.Errorf("positive tokens not positive: report=%v dox=%v", byNGram["report"], byNGram["dox"])
	}
	if byNGram["cat"] >= 0 || byNGram["coffee"] >= 0 {
		t.Errorf("negative tokens not negative: cat=%v coffee=%v", byNGram["cat"], byNGram["coffee"])
	}
	// Shared noise token sits between the class extremes.
	if abs(byNGram["the"]) > abs(byNGram["report"]) {
		t.Errorf("noise token out-weighs signal: the=%v report=%v", byNGram["the"], byNGram["report"])
	}
}

func TestExplainSortedAndTopK(t *testing.T) {
	h := features.NewHasher(features.HasherConfig{Buckets: 1 << 14, Bigrams: true})
	train := synthExamples(300, 33, h)
	m, _ := TrainLogReg(train, LogRegConfig{Buckets: 1 << 14, Epochs: 3, Seed: 34})
	tokens := []string{"report", "raid", "spam", "cat", "music", "movie"}
	all := Explain(m, h, tokens, 0)
	for i := 1; i < len(all); i++ {
		if abs(all[i].Weight) > abs(all[i-1].Weight)+1e-12 {
			t.Fatal("contributions not sorted by |weight|")
		}
	}
	top := Explain(m, h, tokens, 3)
	if len(top) != 3 {
		t.Fatalf("topK = %d", len(top))
	}
	// Bigrams included.
	foundBigram := false
	for _, x := range all {
		if strings.Contains(x.NGram, " ") {
			foundBigram = true
		}
	}
	if !foundBigram {
		t.Error("no bigram contributions")
	}
}

func TestExplainEmpty(t *testing.T) {
	h := features.NewHasher(features.HasherConfig{Buckets: 1 << 10})
	train := synthExamples(50, 35, h)
	m, _ := TrainLogReg(train, LogRegConfig{Buckets: 1 << 10, Epochs: 1, Seed: 36})
	if got := Explain(m, h, nil, 5); len(got) != 0 {
		t.Errorf("empty tokens produced %v", got)
	}
}
