package model

import (
	"math"
	"testing"

	"harassrepro/internal/features"
)

// constScorer always predicts the same probability.
type constScorer struct{ p float64 }

func (c constScorer) Score(features.Vector) float64 { return c.p }

func TestCalibratePerfectlyCalibratedConstant(t *testing.T) {
	// A scorer predicting 0.3 on a pool with 30% positives is perfectly
	// calibrated: ECE ~ 0, Brier = p(1-p) = 0.21.
	var examples []Example
	for i := 0; i < 1000; i++ {
		examples = append(examples, Example{Y: i%10 < 3})
	}
	rep := Calibrate(constScorer{0.3}, examples, 10)
	if rep.ECE > 1e-9 {
		t.Errorf("ECE = %v, want 0", rep.ECE)
	}
	if math.Abs(rep.Brier-0.21) > 1e-9 {
		t.Errorf("Brier = %v, want 0.21", rep.Brier)
	}
	// All mass in the [0.3, 0.4) bin.
	if rep.Bins[3].Count != 1000 {
		t.Errorf("bin 3 count = %d", rep.Bins[3].Count)
	}
}

func TestCalibrateMiscalibratedConstant(t *testing.T) {
	// Predicting 0.9 on an all-negative pool: ECE = 0.9, Brier = 0.81.
	var examples []Example
	for i := 0; i < 100; i++ {
		examples = append(examples, Example{Y: false})
	}
	rep := Calibrate(constScorer{0.9}, examples, 10)
	if math.Abs(rep.ECE-0.9) > 1e-9 {
		t.Errorf("ECE = %v, want 0.9", rep.ECE)
	}
	if math.Abs(rep.Brier-0.81) > 1e-9 {
		t.Errorf("Brier = %v, want 0.81", rep.Brier)
	}
}

func TestCalibrateTrainedModel(t *testing.T) {
	h := features.NewHasher(features.HasherConfig{Buckets: 1 << 14})
	train := synthExamples(600, 21, h)
	m, err := TrainLogReg(train, LogRegConfig{Buckets: 1 << 14, Epochs: 5, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	rep := Calibrate(m, synthExamples(400, 23, h), 10)
	// A well-trained model on separable data should be reasonably
	// calibrated and far better than chance.
	if rep.Brier > 0.1 {
		t.Errorf("Brier = %v on separable data", rep.Brier)
	}
	if rep.ECE > 0.2 {
		t.Errorf("ECE = %v", rep.ECE)
	}
	// Bin structure sanity.
	total := 0
	for _, b := range rep.Bins {
		total += b.Count
		if b.Count > 0 && (b.MeanPredicted < b.Lo-1e-9 || b.MeanPredicted > b.Hi+1e-9) {
			t.Errorf("bin [%v,%v) mean predicted %v outside range", b.Lo, b.Hi, b.MeanPredicted)
		}
	}
	if total != 400 {
		t.Errorf("bins cover %d of 400", total)
	}
}

func TestCalibrateEmpty(t *testing.T) {
	rep := Calibrate(constScorer{0.5}, nil, 10)
	if rep.Brier != 0 || rep.ECE != 0 || len(rep.Bins) != 10 {
		t.Errorf("empty calibration = %+v", rep)
	}
}
