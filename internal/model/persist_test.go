package model

import (
	"bytes"
	"path/filepath"
	"testing"

	"harassrepro/internal/features"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	h := features.NewHasher(features.HasherConfig{Buckets: 1 << 14})
	train := synthExamples(200, 1, h)
	m, err := TrainLogReg(train, LogRegConfig{Buckets: 1 << 14, Epochs: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadLogReg(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Buckets() != m.Buckets() {
		t.Fatalf("buckets: %d vs %d", loaded.Buckets(), m.Buckets())
	}
	for _, ex := range train[:50] {
		if got, want := loaded.Score(ex.X), m.Score(ex.X); got != want {
			t.Fatalf("scores diverge after round trip: %v vs %v", got, want)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	h := features.NewHasher(features.HasherConfig{Buckets: 1 << 12})
	train := synthExamples(100, 3, h)
	m, _ := TrainLogReg(train, LogRegConfig{Buckets: 1 << 12, Epochs: 2, Seed: 4})
	path := filepath.Join(t.TempDir(), "dox.model")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadLogRegFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Score(train[0].X) != m.Score(train[0].X) {
		t.Fatal("file round trip diverged")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := LoadLogReg(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Error("garbage input should error")
	}
	if _, err := LoadLogRegFile(filepath.Join(t.TempDir(), "missing.model")); err == nil {
		t.Error("missing file should error")
	}
	// Corrupted weight count.
	h := features.NewHasher(features.HasherConfig{Buckets: 1 << 10})
	train := synthExamples(50, 5, h)
	m, _ := TrainLogReg(train, LogRegConfig{Buckets: 1 << 10, Epochs: 1, Seed: 6})
	var buf bytes.Buffer
	m.Save(&buf)
	// Truncate the stream mid-way.
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := LoadLogReg(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream should error")
	}
}
