package model

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// persistedLogReg is the on-disk form of a trained classifier. The paper
// open-sources its trained filtering classifiers (without training data
// or PII); this is the equivalent release artifact for this
// reproduction: weights and configuration only, never corpus text.
type persistedLogReg struct {
	Version int
	Weights []float64
	Bias    float64
	Config  LogRegConfig
}

const persistVersion = 1

// Save writes the model to w in gob format.
func (m *LogReg) Save(w io.Writer) error {
	enc := gob.NewEncoder(w)
	return enc.Encode(persistedLogReg{
		Version: persistVersion,
		Weights: m.weights,
		Bias:    m.bias,
		Config:  m.cfg,
	})
}

// SaveFile writes the model to the named file.
func (m *LogReg) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("model: save %s: %w", path, err)
	}
	bw := bufio.NewWriter(f)
	if err := m.Save(bw); err != nil {
		f.Close()
		return fmt.Errorf("model: save %s: %w", path, err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("model: save %s: %w", path, err)
	}
	return f.Close()
}

// LoadLogReg reads a model previously written with Save.
func LoadLogReg(r io.Reader) (*LogReg, error) {
	dec := gob.NewDecoder(r)
	var p persistedLogReg
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("model: load: %w", err)
	}
	if p.Version != persistVersion {
		return nil, fmt.Errorf("model: load: unsupported version %d", p.Version)
	}
	if uint32(len(p.Weights)) != p.Config.Buckets {
		return nil, fmt.Errorf("model: load: weight count %d does not match buckets %d", len(p.Weights), p.Config.Buckets)
	}
	return &LogReg{weights: p.Weights, bias: p.Bias, cfg: p.Config}, nil
}

// LoadLogRegFile reads a model from the named file.
func LoadLogRegFile(path string) (*LogReg, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("model: load %s: %w", path, err)
	}
	defer f.Close()
	return LoadLogReg(bufio.NewReader(f))
}

// Buckets returns the model's feature-space size, needed to construct a
// matching feature hasher at load time.
func (m *LogReg) Buckets() uint32 { return m.cfg.Buckets }
