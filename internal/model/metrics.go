package model

import (
	"math"
	"sort"
)

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add records one (predicted, actual) observation.
func (c *Confusion) Add(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && actual:
		c.FN++
	default:
		c.TN++
	}
}

// Total returns the number of recorded observations.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Precision returns TP / (TP + FP), or 0 when no positives were predicted.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP / (TP + FN), or 0 when no actual positives exist.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns the fraction of correct predictions.
func (c Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}

// Invert returns the confusion matrix of the negative class treated as
// positive, which is how Table 3 reports the "No Dox" / "No CTH" rows.
func (c Confusion) Invert() Confusion {
	return Confusion{TP: c.TN, TN: c.TP, FP: c.FN, FN: c.FP}
}

// LabelMetrics is one row of Table 3.
type LabelMetrics struct {
	Label     string
	F1        float64
	Precision float64
	Recall    float64
	Support   int
}

// Report mirrors the paper's Table 3 structure for one classifier: the
// positive row, the negative row, and weighted/macro averages.
type Report struct {
	Positive    LabelMetrics
	Negative    LabelMetrics
	WeightedAvg LabelMetrics
	MacroAvg    LabelMetrics
	AUC         float64
}

// Evaluate scores every example at the given threshold and produces a
// Table 3-style report. positiveLabel and negativeLabel name the rows
// (e.g. "Dox" / "No Dox").
func Evaluate(s Scorer, examples []Example, threshold float64, positiveLabel, negativeLabel string) Report {
	var conf Confusion
	scores := make([]float64, len(examples))
	labels := make([]bool, len(examples))
	for i, ex := range examples {
		p := s.Score(ex.X)
		scores[i] = p
		labels[i] = ex.Y
		conf.Add(p > threshold, ex.Y)
	}
	neg := conf.Invert()
	pos := LabelMetrics{
		Label: positiveLabel, F1: conf.F1(), Precision: conf.Precision(),
		Recall: conf.Recall(), Support: conf.TP + conf.FN,
	}
	negM := LabelMetrics{
		Label: negativeLabel, F1: neg.F1(), Precision: neg.Precision(),
		Recall: neg.Recall(), Support: neg.TP + neg.FN,
	}
	total := float64(pos.Support + negM.Support)
	weighted := LabelMetrics{Label: "Weighted Avg."}
	macro := LabelMetrics{Label: "Macro Avg."}
	if total > 0 {
		wp := float64(pos.Support) / total
		wn := float64(negM.Support) / total
		weighted.F1 = wp*pos.F1 + wn*negM.F1
		weighted.Precision = wp*pos.Precision + wn*negM.Precision
		weighted.Recall = wp*pos.Recall + wn*negM.Recall
		weighted.Support = int(total)
	}
	macro.F1 = (pos.F1 + negM.F1) / 2
	macro.Precision = (pos.Precision + negM.Precision) / 2
	macro.Recall = (pos.Recall + negM.Recall) / 2
	macro.Support = int(total)
	return Report{
		Positive:    pos,
		Negative:    negM,
		WeightedAvg: weighted,
		MacroAvg:    macro,
		AUC:         AUCROC(scores, labels),
	}
}

// AUCROC computes the area under the ROC curve via the rank statistic
// (equivalent to the Mann–Whitney U normalisation), with midrank handling
// of tied scores. Returns NaN when either class is absent.
func AUCROC(scores []float64, labels []bool) float64 {
	n := len(scores)
	if n == 0 || n != len(labels) {
		return math.NaN()
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		mid := float64(i+j)/2 + 1 // 1-based midrank
		for k := i; k <= j; k++ {
			ranks[idx[k]] = mid
		}
		i = j + 1
	}
	var nPos, nNeg, rankSum float64
	for i, l := range labels {
		if l {
			nPos++
			rankSum += ranks[i]
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return math.NaN()
	}
	u := rankSum - nPos*(nPos+1)/2
	return u / (nPos * nNeg)
}

// PrecisionAtThreshold returns the precision of scorer s on examples at
// threshold t, plus the number of predicted positives. This is the inner
// measurement of the paper's threshold-selection loop (§5.5).
func PrecisionAtThreshold(s Scorer, examples []Example, t float64) (precision float64, predictedPositive int) {
	var conf Confusion
	for _, ex := range examples {
		conf.Add(s.Score(ex.X) > t, ex.Y)
	}
	return conf.Precision(), conf.TP + conf.FP
}

// KFold yields k (train, test) index splits of n examples, shuffled with
// the given seed. Each index appears in exactly one test fold.
func KFold(n, k int, seed uint64) [][2][]int {
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	shuffleInts(idx, seed)
	folds := make([][2][]int, 0, k)
	for f := 0; f < k; f++ {
		lo := f * n / k
		hi := (f + 1) * n / k
		test := append([]int(nil), idx[lo:hi]...)
		train := make([]int, 0, n-len(test))
		train = append(train, idx[:lo]...)
		train = append(train, idx[hi:]...)
		folds = append(folds, [2][]int{train, test})
	}
	return folds
}

func shuffleInts(xs []int, seed uint64) {
	state := seed
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := len(xs) - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		xs[i], xs[j] = xs[j], xs[i]
	}
}
