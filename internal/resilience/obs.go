package resilience

// Runner instrumentation. When Config.Metrics is set, NewRunner
// registers one set of per-stage counters and latency histograms plus
// per-status item counters, resolving every handle up front so the
// per-attempt hot path pays only atomic increments and two clock
// reads — never a registry lookup or an allocation.
//
// Counter semantics (the reconciliation identities the tests assert):
//
//	pipeline_stage_attempts_total  every attempt, including retries
//	pipeline_stage_retries_total   attempts after the first, per (item, stage)
//	pipeline_stage_errors_total    failed attempts (cancelled ones included)
//	pipeline_stage_panics_total    failed attempts that were recovered panics
//	pipeline_stage_failures_total  permanent failures (retry budget exhausted
//	                               or Permanent error); cancellation excluded
//	pipeline_items_total{status}   completed items by final status
//
// so attempts - retries == items that entered the stage, and
// sum over status of items_total == Summary.Processed.

import (
	"time"

	"harassrepro/internal/obs"
)

// runnerMetrics holds the pre-resolved instrument handles for one
// Runner.
type runnerMetrics struct {
	items  [3]*obs.Counter // indexed by Status
	docsPS *obs.Gauge
	runSec *obs.Gauge
	stages []stageMetrics // aligned with Runner.stages
}

type stageMetrics struct {
	attempts *obs.Counter
	retries  *obs.Counter
	errors   *obs.Counter
	panics   *obs.Counter
	failures *obs.Counter
	latency  *obs.Histogram
}

// newRunnerMetrics registers (or re-resolves) the runner's instruments
// on reg. Registration is idempotent in obs, so several runners over
// the same stage names share series.
func newRunnerMetrics(reg *obs.Registry, stages []string) *runnerMetrics {
	rm := &runnerMetrics{
		docsPS: reg.NewGauge("pipeline_last_run_docs_per_sec",
			"items per second over the last completed Process run"),
		runSec: reg.NewGauge("pipeline_last_run_seconds",
			"wall-clock duration of the last completed Process run"),
	}
	for st := StatusOK; st <= StatusQuarantined; st++ {
		rm.items[st] = reg.NewCounter("pipeline_items_total",
			"items completed, by final status", obs.L("status", st.String()))
	}
	for _, name := range stages {
		l := obs.L("stage", name)
		rm.stages = append(rm.stages, stageMetrics{
			attempts: reg.NewCounter("pipeline_stage_attempts_total",
				"stage attempts, including retries", l),
			retries: reg.NewCounter("pipeline_stage_retries_total",
				"stage attempts beyond the first per item", l),
			errors: reg.NewCounter("pipeline_stage_errors_total",
				"failed stage attempts", l),
			panics: reg.NewCounter("pipeline_stage_panics_total",
				"failed stage attempts that were recovered panics", l),
			failures: reg.NewCounter("pipeline_stage_failures_total",
				"permanent stage failures (quarantine or degradation)", l),
			latency: reg.NewHistogram("pipeline_stage_latency_ns",
				"per-attempt stage latency", obs.DurationBuckets(), l),
		})
	}
	return rm
}

// observeAttempt records one attempt's latency and, on a sampled item,
// its trace timing. Called with the duration already measured so the
// clock reads stay in runStage next to the attempt itself.
func (r *Runner[T]) observeAttempt(si, index int, d time.Duration, traced bool) {
	if r.metrics != nil {
		r.metrics.stages[si].latency.Observe(d.Nanoseconds())
	}
	if traced {
		r.cfg.Tracer.Record(index, r.stages[si].Name, d.Nanoseconds())
	}
}
