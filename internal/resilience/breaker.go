package resilience

// Circuit breaker for shard-level (or backend-level) health gating.
// The serving layer routes traffic around a shard whose breaker is
// open instead of queueing into it: a shard that keeps dying (panic,
// stall, repeated generation failures) would otherwise soak up
// admitted documents and convert every incident into client-visible
// latency. The state machine is the classic three-state breaker:
//
//	closed    — traffic flows; consecutive failures are counted and
//	            reset on any success.
//	open      — Allow refuses everything until OpenTimeout has
//	            elapsed since the breaker opened.
//	half-open — after OpenTimeout, Allow admits up to HalfOpenProbes
//	            probe units; HalfOpenProbes successes close the
//	            breaker, any failure reopens it with a fresh timeout.
//
// Time is read through an injectable clock so the transition machinery
// is unit-testable without sleeping.

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed admits all traffic.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen admits a bounded number of probes.
	BreakerHalfOpen
	// BreakerOpen refuses all traffic until the open timeout elapses.
	BreakerOpen
)

// String returns the lower-case state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// BreakerConfig configures a Breaker. Zero values pick defaults.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failures (with no
	// intervening success) that opens a closed breaker. Default 3.
	FailureThreshold int
	// OpenTimeout is how long an open breaker refuses traffic before
	// moving to half-open. Default 5s.
	OpenTimeout time.Duration
	// HalfOpenProbes is both the number of probe admissions a
	// half-open breaker grants and the number of successes required to
	// close it. Default 1.
	HalfOpenProbes int
	// Now is the clock; nil means time.Now. Tests inject a fake.
	Now func() time.Time
	// OnTransition, if set, observes every state change (under the
	// breaker's lock: keep it cheap — a gauge set, not I/O).
	OnTransition func(from, to BreakerState)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = 5 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a three-state circuit breaker. All methods are safe for
// concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	fails    int       // consecutive failures while closed
	probes   int       // probe admissions granted this half-open window
	probeOK  int       // probe successes this half-open window
	openedAt time.Time // when the breaker last opened
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// transition moves to a new state, resetting window counters and
// notifying the observer. Callers hold b.mu.
func (b *Breaker) transition(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	b.fails = 0
	b.probes = 0
	b.probeOK = 0
	if to == BreakerOpen {
		b.openedAt = b.cfg.Now()
	}
	if b.cfg.OnTransition != nil {
		b.cfg.OnTransition(from, to)
	}
}

// tick applies the open -> half-open time transition. Callers hold b.mu.
func (b *Breaker) tick() {
	if b.state == BreakerOpen && b.cfg.Now().Sub(b.openedAt) >= b.cfg.OpenTimeout {
		b.transition(BreakerHalfOpen)
	}
}

// Allow reports whether one unit of traffic may proceed. In half-open
// it grants up to HalfOpenProbes admissions; callers must report the
// outcome of admitted traffic via Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tick()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		if b.probes < b.cfg.HalfOpenProbes {
			b.probes++
			return true
		}
		return false
	default:
		return false
	}
}

// Success records one successful unit of traffic: it clears the
// consecutive-failure count while closed and counts toward closing a
// half-open breaker. Successes arriving while open (late results from
// before the incident) are ignored.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tick()
	switch b.state {
	case BreakerClosed:
		b.fails = 0
	case BreakerHalfOpen:
		b.probeOK++
		if b.probeOK >= b.cfg.HalfOpenProbes {
			b.transition(BreakerClosed)
		}
	}
}

// Failure records one failed unit of traffic (or one shard incident):
// it opens a closed breaker at the threshold, reopens a half-open
// breaker immediately, and refreshes an open breaker's timeout.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tick()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.transition(BreakerOpen)
		}
	case BreakerHalfOpen:
		b.transition(BreakerOpen)
	default:
		b.openedAt = b.cfg.Now()
	}
}

// State returns the current state, applying the open -> half-open time
// transition first so the answer reflects the clock, not just the last
// recorded event.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tick()
	return b.state
}
