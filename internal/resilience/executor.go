package resilience

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"harassrepro/internal/obs"
	"harassrepro/internal/randx"
)

// Stage is one named processing step applied to every item. Stages run
// in declaration order; each attempt operates on a private copy of the
// item that is committed back only on success, so a failing or
// timed-out attempt never leaves a half-mutated document behind.
//
// Stage functions must treat the item's existing field values as
// read-only inputs (replace slices, don't append into shared backing
// arrays): a timed-out attempt is abandoned, not killed, and its
// goroutine keeps its own copy until it returns.
type Stage[T any] struct {
	// Name identifies the stage in dead letters and degradation marks.
	Name string
	// Transient marks every failure of this stage retryable by
	// default; Transient/Permanent error markers override per error.
	Transient bool
	// Degradable means a permanent failure annotates the item as
	// degraded (Result.Degraded) instead of quarantining it.
	Degradable bool
	// Timeout is the per-attempt deadline. 0 means no deadline. A
	// timed-out attempt fails with context.DeadlineExceeded and is
	// retried like any other transient failure when the stage allows.
	Timeout time.Duration
	// Fn processes the item. index is the item's position in the
	// input stream; combined with the runner seed it lets stages
	// derive deterministic per-item randomness.
	Fn func(ctx context.Context, index int, item *T) error
}

// Config configures a Runner.
type Config[T any] struct {
	// Workers bounds the worker pool. 0 means GOMAXPROCS.
	Workers int
	// Seed drives retry jitter (and is conventionally shared with the
	// stages' own per-item randomness derivation).
	Seed uint64
	// Retry is the backoff policy for retryable failures.
	Retry RetryPolicy
	// Ordered makes the results channel yield items in input order
	// (with a bounded reordering window of 4x workers) instead of
	// completion order.
	Ordered bool
	// Describe, if set, labels items in dead letters (typically the
	// document ID).
	Describe func(*T) string
	// Metrics, if set, receives per-stage attempt/retry/panic/failure
	// counters, per-attempt latency histograms and per-status item
	// counters (see obs.go for the catalog and its reconciliation
	// identities). The hot path stays allocation-free either way.
	Metrics *obs.Registry
	// Tracer, if set, records per-stage timings for the documents its
	// seeded sampling selects; sampling is a pure function of (tracer
	// seed, item index), so traces are reproducible across runs and
	// worker counts.
	Tracer *obs.Tracer
}

// Runner executes a fixed stage pipeline over a stream of items on a
// bounded worker pool. A Runner is immutable and safe for concurrent
// use; each Process call is an independent run.
type Runner[T any] struct {
	cfg     Config[T]
	stages  []Stage[T]
	metrics *runnerMetrics
}

// NewRunner builds a Runner over the given stages.
func NewRunner[T any](cfg Config[T], stages ...Stage[T]) *Runner[T] {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	cfg.Retry = cfg.Retry.withDefaults()
	r := &Runner[T]{cfg: cfg, stages: stages}
	if cfg.Metrics != nil {
		names := make([]string, len(stages))
		for i, st := range stages {
			names[i] = st.Name
		}
		r.metrics = newRunnerMetrics(cfg.Metrics, names)
	}
	return r
}

type work[T any] struct {
	index int
	item  T
}

// Process consumes items from in and returns a channel of per-item
// results. The results channel is closed once every accepted item has
// completed and must be drained until closed. When ctx is cancelled,
// in-flight items finish their current attempt, remaining input is not
// consumed, and the channel closes early: the caller observes fewer
// results than inputs.
func (r *Runner[T]) Process(ctx context.Context, in <-chan T) <-chan Result[T] {
	raw := make(chan Result[T], r.cfg.Workers)
	workCh := make(chan work[T], r.cfg.Workers)

	// The reordering window bounds in-flight items in ordered mode; it
	// must exceed workers + work-channel capacity so the next item to
	// emit always owns a slot (see Config.Ordered).
	var window chan struct{}
	if r.cfg.Ordered {
		window = make(chan struct{}, 4*r.cfg.Workers)
	}

	// Feeder: assigns stream indexes in arrival order.
	go func() {
		defer close(workCh)
		index := 0
		for {
			select {
			case <-ctx.Done():
				return
			case item, ok := <-in:
				if !ok {
					return
				}
				if window != nil {
					select {
					case window <- struct{}{}:
					case <-ctx.Done():
						return
					}
				}
				select {
				case workCh <- work[T]{index: index, item: item}:
					index++
				case <-ctx.Done():
					return
				}
			}
		}
	}()

	started := time.Now()
	var completed atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(r.cfg.Workers)
	for w := 0; w < r.cfg.Workers; w++ {
		go func() {
			defer wg.Done()
			for wk := range workCh {
				// Deliver unconditionally: results channels must be
				// drained until closed, even after cancellation, so no
				// completed item is lost.
				res := r.runItem(ctx, wk.index, wk.item)
				completed.Add(1)
				raw <- res
			}
		}()
	}
	go func() {
		wg.Wait()
		if r.metrics != nil {
			elapsed := time.Since(started).Seconds()
			r.metrics.runSec.Set(elapsed)
			if elapsed > 0 {
				r.metrics.docsPS.Set(float64(completed.Load()) / elapsed)
			}
		}
		close(raw)
	}()

	if !r.cfg.Ordered {
		return raw
	}
	out := make(chan Result[T], r.cfg.Workers)
	go func() {
		defer close(out)
		pending := map[int]Result[T]{}
		next := 0
		for res := range raw {
			pending[res.Index] = res
			for {
				n, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				out <- n
				next++
				<-window
			}
		}
		// Cancellation can leave gaps; flush what completed, in order.
		for len(pending) > 0 {
			for {
				n, ok := pending[next]
				if !ok {
					next++
					break
				}
				delete(pending, next)
				out <- n
				next++
			}
		}
	}()
	return out
}

// RunSlice processes items and returns the results in input order,
// with an aggregate summary. On cancellation the results cover only
// the items that completed and err is the context error.
func (r *Runner[T]) RunSlice(ctx context.Context, items []T) ([]Result[T], Summary, error) {
	in := make(chan T)
	go func() {
		defer close(in)
		for _, it := range items {
			select {
			case in <- it:
			case <-ctx.Done():
				return
			}
		}
	}()
	var results []Result[T]
	for res := range r.Process(ctx, in) {
		results = append(results, res)
	}
	sortResults(results)
	return results, Summarize(results), ctx.Err()
}

func sortResults[T any](rs []Result[T]) {
	// Insertion sort: results arrive nearly ordered (bounded window).
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Index < rs[j-1].Index; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// runItem applies every stage to one item, with retries, panic
// recovery, degradation and quarantine.
func (r *Runner[T]) runItem(ctx context.Context, index int, item T) Result[T] {
	res := Result[T]{Index: index, Status: StatusOK}
	for si, st := range r.stages {
		err, attempts := r.runStage(ctx, st, si, index, &item)
		if err == nil {
			continue
		}
		if st.Degradable {
			res.Status = StatusDegraded
			res.Degraded = append(res.Degraded, st.Name)
			continue
		}
		dl := &DeadLetter{Index: index, Stage: st.Name, Attempts: attempts, Err: err}
		if r.cfg.Describe != nil {
			dl.ID = r.cfg.Describe(&item)
		}
		res.Status = StatusQuarantined
		res.Dead = dl
		break
	}
	res.Item = item
	if r.metrics != nil {
		r.metrics.items[res.Status].Inc()
	}
	return res
}

// runStage runs one stage with the retry policy, returning the final
// error (nil on success) and the number of attempts made. si is the
// stage's index into r.stages, used to resolve its metric handles.
func (r *Runner[T]) runStage(ctx context.Context, st Stage[T], si, index int, item *T) (error, int) {
	var sm *stageMetrics
	if r.metrics != nil {
		sm = &r.metrics.stages[si]
	}
	traced := r.cfg.Tracer.Sampled(index)
	timed := sm != nil || traced
	var jitter *randx.Source
	for attempt := 1; ; attempt++ {
		if sm != nil {
			sm.attempts.Inc()
			if attempt > 1 {
				sm.retries.Inc()
			}
		}
		var t0 time.Time
		if timed {
			t0 = time.Now()
		}
		err := r.attempt(ctx, st, index, item)
		if timed {
			r.observeAttempt(si, index, time.Since(t0), traced)
		}
		if err == nil {
			return nil, attempt
		}
		if sm != nil {
			sm.errors.Inc()
			var pe *PanicError
			if errors.As(err, &pe) {
				sm.panics.Inc()
			}
		}
		if ctx.Err() != nil {
			return fmt.Errorf("cancelled: %w", err), attempt
		}
		if !retryable(st.Transient, err) || attempt >= r.cfg.Retry.MaxAttempts {
			if sm != nil {
				sm.failures.Inc()
			}
			return err, attempt
		}
		if jitter == nil {
			jitter = randx.New(r.cfg.Seed).Split("retry").Split(st.Name).SplitN("item", index)
		}
		if serr := sleep(ctx, r.cfg.Retry.backoff(attempt, jitter)); serr != nil {
			return fmt.Errorf("cancelled during backoff: %w", err), attempt
		}
	}
}

// attempt runs one stage attempt on a private copy of the item,
// committing the copy back only on success. The attempt executes in
// its own goroutine so a deadline can abandon a stuck stage without
// blocking the worker; a recovered panic is returned as *PanicError.
func (r *Runner[T]) attempt(ctx context.Context, st Stage[T], index int, item *T) error {
	// Fast path: without a deadline there is nothing to abandon, so
	// the attempt runs inline on the worker (no goroutine per
	// attempt), still on a private copy and still panic-isolated.
	if st.Timeout <= 0 {
		scratch := *item
		err := func() (err error) {
			defer func() {
				if v := recover(); v != nil {
					err = capturePanic(v)
				}
			}()
			return st.Fn(ctx, index, &scratch)
		}()
		if err != nil {
			return err
		}
		*item = scratch
		return nil
	}

	actx, cancel := context.WithTimeout(ctx, st.Timeout)
	defer cancel()

	type outcome struct {
		scratch T
		err     error
	}
	done := make(chan outcome, 1)
	scratch := *item
	go func() {
		var err error
		defer func() {
			if v := recover(); v != nil {
				err = capturePanic(v)
			}
			done <- outcome{scratch: scratch, err: err}
		}()
		err = st.Fn(actx, index, &scratch)
	}()

	select {
	case o := <-done:
		if o.err != nil {
			return o.err
		}
		*item = o.scratch
		return nil
	case <-actx.Done():
		// Deadline or cancellation: abandon the attempt. The goroutine
		// owns its scratch copy and exits via the buffered channel.
		return fmt.Errorf("resilience: stage %q: %w", st.Name, actx.Err())
	}
}
