package resilience

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"harassrepro/internal/obs"
)

// TestRunnerMetricsReconcile exercises every counter the runner emits
// against a pipeline with a known fault plan, then checks the
// reconciliation identities documented in obs.go exactly.
func TestRunnerMetricsReconcile(t *testing.T) {
	const n = 40
	flakes := func(i int) bool { return i%4 == 0 }    // 10 docs: fail 1st attempt
	panics := func(i int) bool { return i%10 == 7 }   // 4 docs: degrade via panic
	poisoned := func(i int) bool { return i%20 == 5 } // 2 docs: quarantine
	count := func(p func(int) bool) (c int) {         // plan cardinalities
		for i := 0; i < n; i++ {
			if p(i) {
				c++
			}
		}
		return c
	}
	nFlaky, nPanic, nPoison := count(flakes), count(panics), count(poisoned)

	var firstTry [n]atomic.Bool
	reg := obs.NewRegistry()
	tr := obs.NewTracer(7, 1, 512)
	r := NewRunner(Config[doc]{Workers: 4, Seed: 9, Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: 1, MaxDelay: 1}, Metrics: reg, Tracer: tr},
		Stage[doc]{Name: "flaky", Transient: true, Fn: func(_ context.Context, index int, d *doc) error {
			if flakes(index) && !firstTry[index].Swap(true) {
				return fmt.Errorf("transient glitch on %d", index)
			}
			return nil
		}},
		Stage[doc]{Name: "panicky", Degradable: true, Fn: func(_ context.Context, index int, d *doc) error {
			if panics(index) {
				panic("enrichment backend down")
			}
			return nil
		}},
		Stage[doc]{Name: "quarantine", Transient: true, Fn: func(_ context.Context, index int, d *doc) error {
			if poisoned(index) {
				return fmt.Errorf("poison document %d", index)
			}
			return nil
		}},
	)
	_, sum, err := r.RunSlice(context.Background(), makeDocs(n))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Processed != n || sum.Degraded != nPanic || sum.Quarantined != nPoison {
		t.Fatalf("summary = %v", sum)
	}

	s := reg.Snapshot()
	cv := func(name, stage string) uint64 {
		return uint64(s.CounterValue(name, obs.L("stage", stage)))
	}
	// Expected per-stage totals from the fault plan. Panicky docs are
	// degraded, not quarantined, so every doc reaches every stage except
	// the nPoison quarantined ones, which die in the last stage anyway.
	type want struct{ attempts, retries, errors, panics, failures uint64 }
	wants := map[string]want{
		"flaky":      {attempts: n + uint64(nFlaky), retries: uint64(nFlaky), errors: uint64(nFlaky)},
		"panicky":    {attempts: n, errors: uint64(nPanic), panics: uint64(nPanic), failures: uint64(nPanic)},
		"quarantine": {attempts: n + 2*uint64(nPoison), retries: 2 * uint64(nPoison), errors: 3 * uint64(nPoison), failures: uint64(nPoison)},
	}
	for stage, w := range wants {
		got := want{
			attempts: cv("pipeline_stage_attempts_total", stage),
			retries:  cv("pipeline_stage_retries_total", stage),
			errors:   cv("pipeline_stage_errors_total", stage),
			panics:   cv("pipeline_stage_panics_total", stage),
			failures: cv("pipeline_stage_failures_total", stage),
		}
		if got != w {
			t.Errorf("stage %q counters = %+v, want %+v", stage, got, w)
		}
		// attempts - retries == items that entered the stage.
		if entered := got.attempts - got.retries; entered != n {
			t.Errorf("stage %q: attempts-retries = %d, want %d", stage, entered, n)
		}
		// The latency histogram sees exactly one observation per attempt.
		m, ok := s.Find("pipeline_stage_latency_ns", obs.L("stage", stage))
		if !ok {
			t.Fatalf("stage %q latency histogram missing", stage)
		}
		if m.Count != got.attempts {
			t.Errorf("stage %q latency count = %d, want %d attempts", stage, m.Count, got.attempts)
		}
	}

	// Items by final status reconcile with the run summary.
	items := func(status string) int {
		return int(s.CounterValue("pipeline_items_total", obs.L("status", status)))
	}
	if items("ok") != n-nPanic-nPoison || items("degraded") != nPanic || items("quarantined") != nPoison {
		t.Errorf("items_total = ok:%d degraded:%d quarantined:%d, want %d/%d/%d",
			items("ok"), items("degraded"), items("quarantined"), n-nPanic-nPoison, nPanic, nPoison)
	}
	if total := items("ok") + items("degraded") + items("quarantined"); total != sum.Processed {
		t.Errorf("sum of items_total = %d, want Processed = %d", total, sum.Processed)
	}

	// Throughput gauges were set by the completed run.
	if v := s.CounterValue("pipeline_last_run_docs_per_sec"); v <= 0 {
		t.Errorf("docs_per_sec gauge = %v, want > 0", v)
	}

	// With rate 1 the tracer records every attempt of every stage.
	var wantTraced uint64
	for _, w := range wants {
		wantTraced += w.attempts
	}
	if got := tr.Total(); got != wantTraced {
		t.Errorf("tracer recorded %d timings, want %d (one per attempt)", got, wantTraced)
	}
}

// TestRunnerWithoutMetricsUnchanged pins the zero-config path: a runner
// with no registry and no tracer behaves exactly as before.
func TestRunnerWithoutMetricsUnchanged(t *testing.T) {
	r := NewRunner(Config[doc]{Workers: 2, Seed: 1, Retry: fastRetry()},
		Stage[doc]{Name: "score", Fn: func(_ context.Context, index int, d *doc) error {
			d.Score = float64(index)
			return nil
		}},
	)
	if r.metrics != nil {
		t.Fatal("metrics built without a registry")
	}
	_, sum, err := r.RunSlice(context.Background(), makeDocs(10))
	if err != nil || sum.Succeeded != 10 {
		t.Fatalf("sum = %v, err = %v", sum, err)
	}
}
