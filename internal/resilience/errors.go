package resilience

import "errors"

// Stages classify their own failures by default (Stage.Transient), but
// an individual error can override the stage's classification by
// wrapping it with Transient or Permanent. The chaos harness marks its
// injected faults Transient so that any wrapped stage retries them, and
// validation failures inside otherwise-transient stages can be marked
// Permanent to fail fast instead of burning attempts.

// transientError marks an error as retryable regardless of the stage's
// Transient flag.
type transientError struct{ err error }

func (e *transientError) Error() string { return "transient: " + e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// permanentError marks an error as non-retryable regardless of the
// stage's Transient flag.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return "permanent: " + e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Transient wraps err so the runner retries it even in a stage not
// marked Transient. Transient(nil) is nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// Permanent wraps err so the runner fails it immediately even in a
// stage marked Transient. Permanent(nil) is nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsTransient reports whether err carries a Transient marker.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// IsPermanent reports whether err carries a Permanent marker.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// retryable decides whether a stage failure should be retried:
// per-error markers win, then the stage's Transient flag. Recovered
// panics follow the stage flag unless the panic value itself carried a
// marker (the chaos harness panics with marked errors).
func retryable(stage bool, err error) bool {
	if IsPermanent(err) {
		return false
	}
	if IsTransient(err) {
		return true
	}
	var p *PanicError
	if errors.As(err, &p) {
		if inner, ok := p.Value.(error); ok {
			if IsPermanent(inner) {
				return false
			}
			if IsTransient(inner) {
				return true
			}
		}
	}
	return stage
}
