package resilience

import (
	"context"
	"time"

	"harassrepro/internal/randx"
)

// RetryPolicy is exponential backoff with full seeded jitter. The
// jitter stream is derived from (runner seed, stage name, item index),
// so the sequence of sleep durations for a given item is deterministic
// across runs and independent of worker scheduling. Sleeps never affect
// item output — only wall-clock — so determinism of results does not
// depend on them at all; seeding them anyway keeps traces reproducible.
type RetryPolicy struct {
	// MaxAttempts bounds how many times a retryable stage runs per
	// item (>= 1). 0 means the default of 4.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt. 0 means 1ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. 0 means 250ms.
	MaxDelay time.Duration
	// Multiplier grows the backoff per attempt. 0 means 2.
	Multiplier float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 250 * time.Millisecond
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	return p
}

// backoff returns the full-jitter delay before attempt n (1-based: the
// delay taken after attempt n failed): uniform in [0, min(MaxDelay,
// BaseDelay * Multiplier^(n-1))].
func (p RetryPolicy) backoff(attempt int, rng *randx.Source) time.Duration {
	ceil := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		ceil *= p.Multiplier
		if ceil >= float64(p.MaxDelay) {
			ceil = float64(p.MaxDelay)
			break
		}
	}
	if ceil > float64(p.MaxDelay) {
		ceil = float64(p.MaxDelay)
	}
	return time.Duration(rng.Float64() * ceil)
}

// sleep waits for d or until ctx is cancelled.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
