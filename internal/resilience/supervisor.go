package resilience

// Supervisor: generation-based restart of a long-running task, the
// self-healing half of the sharded serving layer. A supervised task —
// one scoring shard's stream-and-collect loop — runs until it fails
// (error, panic, or detected stall) and is then restarted as a fresh
// generation under exponential backoff with seeded jitter. The
// supervisor never lets a sick shard take the process down and never
// spins hot on a shard that dies instantly.
//
// Stall detection is heartbeat-based: the task beats its Heartbeat on
// every unit of progress (a delivered result) and maintains a busy
// count (admitted-but-unanswered work). A task that is busy but has
// not beaten for StallTimeout is declared stalled: its generation
// context is cancelled and, once the task returns, the exit is
// reported as ErrStalled. Tasks must honour context cancellation —
// that contract is what turns "kill the shard" into a bounded
// operation instead of a leaked goroutine.

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"harassrepro/internal/randx"
)

// ErrStalled marks a generation killed by the heartbeat watchdog:
// busy work was pending but no progress was observed for StallTimeout.
var ErrStalled = errors.New("resilience: supervised task stalled")

// Heartbeat is the liveness channel between a supervised task and its
// watchdog. All methods are safe for concurrent use.
type Heartbeat struct {
	last atomic.Int64 // unix nanos of the last beat
	busy atomic.Int64 // admitted-but-unfinished units of work
}

// Beat records progress now.
func (h *Heartbeat) Beat() { h.last.Store(time.Now().UnixNano()) }

// AddBusy adjusts the busy count: +n on admission, -n on completion.
// A task with zero busy work is never declared stalled.
func (h *Heartbeat) AddBusy(n int) { h.busy.Add(int64(n)) }

// Busy returns the current busy count.
func (h *Heartbeat) Busy() int { return int(h.busy.Load()) }

// stalled reports whether busy work has seen no beat for timeout.
func (h *Heartbeat) stalled(timeout time.Duration) bool {
	return h.busy.Load() > 0 &&
		time.Since(time.Unix(0, h.last.Load())) > timeout
}

// SupervisorConfig configures Supervise. Zero values pick defaults.
type SupervisorConfig struct {
	// Name labels the supervised task in errors and seeds the restart
	// jitter stream (with Seed).
	Name string
	// Seed drives the backoff jitter so restart schedules are
	// deterministic for a given failure sequence.
	Seed uint64
	// Backoff is the restart backoff policy. MaxAttempts is ignored:
	// a supervised task is restarted for as long as the context lives.
	Backoff RetryPolicy
	// StallTimeout is how long a busy task may go without a heartbeat
	// before being killed as stalled. 0 disables stall detection.
	StallTimeout time.Duration
	// WatchInterval is the watchdog poll period. Default
	// StallTimeout/4 (min 1ms).
	WatchInterval time.Duration
	// HealthyAfter: a generation that lived at least this long resets
	// the backoff ladder, so one crash after a day of health restarts
	// fast. Default 30s.
	HealthyAfter time.Duration
	// KillTimeout bounds how long the supervisor waits for a cancelled
	// generation to return before abandoning its goroutine. 0 waits
	// forever (the right choice when the task is known to honour
	// cancellation, as the serving shards are).
	KillTimeout time.Duration
	// OnExit, if set, observes every failed generation before its
	// restart sleep: the generation number, how long it lived, why it
	// died, and the backoff chosen. Not called for the final exit when
	// the supervisor's context is cancelled.
	OnExit func(gen int, uptime time.Duration, err error, restartIn time.Duration)
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	c.Backoff = c.Backoff.withDefaults()
	if c.WatchInterval <= 0 {
		c.WatchInterval = c.StallTimeout / 4
		if c.WatchInterval < time.Millisecond {
			c.WatchInterval = time.Millisecond
		}
	}
	if c.HealthyAfter <= 0 {
		c.HealthyAfter = 30 * time.Second
	}
	return c
}

// TaskFunc is one generation of a supervised task. It runs until its
// context is cancelled or the task fails; returning nil ends
// supervision (a voluntary, successful completion). gen is the
// 0-based generation number; hb is the generation's heartbeat.
type TaskFunc func(ctx context.Context, gen int, hb *Heartbeat) error

// errAbandoned marks a generation whose goroutine outlived KillTimeout
// after cancellation and was abandoned.
var errAbandoned = errors.New("resilience: cancelled task did not return; goroutine abandoned")

// Supervise runs task generations until ctx is cancelled or a
// generation returns nil. Each failed generation (error, panic —
// captured as *PanicError — or stall) is restarted after an
// exponential, seeded-jitter backoff. Returns nil on voluntary
// completion or ctx cancellation.
func Supervise(ctx context.Context, cfg SupervisorConfig, task TaskFunc) error {
	cfg = cfg.withDefaults()
	jitter := randx.New(cfg.Seed).Split("supervisor").Split(cfg.Name)
	consecutive := 0
	for gen := 0; ; gen++ {
		gctx, cancel := context.WithCancel(ctx)
		hb := &Heartbeat{}
		hb.Beat()
		start := time.Now()
		done := make(chan error, 1)
		go func() {
			var err error
			defer func() {
				if v := recover(); v != nil {
					err = capturePanic(v)
				}
				done <- err
			}()
			err = task(gctx, gen, hb)
		}()

		err := watch(ctx, cfg, hb, cancel, done)
		cancel()
		uptime := time.Since(start)

		if ctx.Err() != nil {
			// Supervised stop, not a failure: no OnExit, no restart.
			return nil
		}
		if err == nil {
			return nil
		}
		if uptime >= cfg.HealthyAfter {
			consecutive = 0
		}
		consecutive++
		delay := cfg.Backoff.backoff(consecutive, jitter)
		if cfg.OnExit != nil {
			cfg.OnExit(gen, uptime, err, delay)
		}
		if sleep(ctx, delay) != nil {
			return nil
		}
	}
}

// watch waits for the generation to finish, killing it if the
// heartbeat watchdog declares a stall. Returns the generation's error
// (wrapped in ErrStalled when the watchdog fired).
func watch(ctx context.Context, cfg SupervisorConfig, hb *Heartbeat, cancel context.CancelFunc, done <-chan error) error {
	var tick <-chan time.Time
	if cfg.StallTimeout > 0 {
		t := time.NewTicker(cfg.WatchInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case err := <-done:
			return err
		case <-ctx.Done():
			cancel()
			return awaitExit(cfg, done)
		case <-tick:
			if hb.stalled(cfg.StallTimeout) {
				cancel()
				err := awaitExit(cfg, done)
				if err == nil {
					return ErrStalled
				}
				return fmt.Errorf("%w: %w", ErrStalled, err)
			}
		}
	}
}

// awaitExit waits for a cancelled generation to return, bounded by
// KillTimeout when one is configured.
func awaitExit(cfg SupervisorConfig, done <-chan error) error {
	if cfg.KillTimeout <= 0 {
		return <-done
	}
	t := time.NewTimer(cfg.KillTimeout)
	defer t.Stop()
	select {
	case err := <-done:
		return err
	case <-t.C:
		return errAbandoned
	}
}
