package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// exitRecorder collects OnExit events thread-safely.
type exitRecorder struct {
	mu    sync.Mutex
	gens  []int
	errs  []error
	waits []time.Duration
}

func (r *exitRecorder) onExit(gen int, _ time.Duration, err error, restartIn time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gens = append(r.gens, gen)
	r.errs = append(r.errs, err)
	r.waits = append(r.waits, restartIn)
}

func (r *exitRecorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.gens)
}

func TestSuperviseRestartsFailingGenerationsWithBackoff(t *testing.T) {
	rec := &exitRecorder{}
	var gensRun atomic.Int32
	err := Supervise(context.Background(), SupervisorConfig{
		Name:    "test",
		Seed:    7,
		Backoff: RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond},
		OnExit:  rec.onExit,
	}, func(_ context.Context, gen int, _ *Heartbeat) error {
		gensRun.Add(1)
		if gen < 3 {
			return fmt.Errorf("boom in gen %d", gen)
		}
		return nil // voluntary completion ends supervision
	})
	if err != nil {
		t.Fatalf("Supervise = %v, want nil", err)
	}
	if got := gensRun.Load(); got != 4 {
		t.Fatalf("generations run = %d, want 4", got)
	}
	if rec.count() != 3 {
		t.Fatalf("OnExit events = %d, want 3 (one per failed generation)", rec.count())
	}
	for i, g := range rec.gens {
		if g != i {
			t.Errorf("OnExit gen[%d] = %d, want %d", i, g, i)
		}
	}
}

func TestSuperviseCapturesPanicsAsPanicError(t *testing.T) {
	rec := &exitRecorder{}
	err := Supervise(context.Background(), SupervisorConfig{
		Name:    "panicky",
		Backoff: RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
		OnExit:  rec.onExit,
	}, func(_ context.Context, gen int, _ *Heartbeat) error {
		if gen == 0 {
			panic("shard exploded")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Supervise = %v", err)
	}
	if rec.count() != 1 {
		t.Fatalf("OnExit events = %d, want 1", rec.count())
	}
	var pe *PanicError
	if !errors.As(rec.errs[0], &pe) {
		t.Fatalf("exit error = %v (%T), want *PanicError", rec.errs[0], rec.errs[0])
	}
	if pe.Value != "shard exploded" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = %+v, want value and stack preserved", pe)
	}
}

func TestSuperviseDetectsStallAndKillsGeneration(t *testing.T) {
	rec := &exitRecorder{}
	var healthyGen atomic.Int32
	err := Supervise(context.Background(), SupervisorConfig{
		Name:         "staller",
		Backoff:      RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
		StallTimeout: 30 * time.Millisecond,
		OnExit:       rec.onExit,
	}, func(ctx context.Context, gen int, hb *Heartbeat) error {
		if gen == 0 {
			// Busy work, then silence: the watchdog must kill us. The
			// task honours cancellation, as the contract requires.
			hb.AddBusy(3)
			<-ctx.Done()
			return ctx.Err()
		}
		healthyGen.Store(int32(gen))
		return nil
	})
	if err != nil {
		t.Fatalf("Supervise = %v", err)
	}
	if rec.count() != 1 {
		t.Fatalf("OnExit events = %d, want 1", rec.count())
	}
	if !errors.Is(rec.errs[0], ErrStalled) {
		t.Fatalf("exit error = %v, want ErrStalled", rec.errs[0])
	}
	if healthyGen.Load() != 1 {
		t.Errorf("restarted generation = %d, want 1", healthyGen.Load())
	}
}

func TestSuperviseIdleTaskIsNotStalled(t *testing.T) {
	// Busy count zero: no beats for far longer than StallTimeout must
	// not trigger the watchdog.
	done := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var exits atomic.Int32
	go func() {
		defer close(done)
		Supervise(ctx, SupervisorConfig{ //nolint:errcheck
			Name:         "idle",
			StallTimeout: 10 * time.Millisecond,
			OnExit:       func(int, time.Duration, error, time.Duration) { exits.Add(1) },
		}, func(ctx context.Context, _ int, _ *Heartbeat) error {
			<-ctx.Done()
			return ctx.Err()
		})
	}()
	time.Sleep(80 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("supervisor did not stop on context cancellation")
	}
	if exits.Load() != 0 {
		t.Errorf("idle task was killed %d times, want 0", exits.Load())
	}
}

func TestSuperviseBeatingBusyTaskIsNotStalled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var exits atomic.Int32
	done := make(chan struct{})
	go func() {
		defer close(done)
		Supervise(ctx, SupervisorConfig{ //nolint:errcheck
			Name:         "beater",
			StallTimeout: 25 * time.Millisecond,
			OnExit:       func(int, time.Duration, error, time.Duration) { exits.Add(1) },
		}, func(ctx context.Context, _ int, hb *Heartbeat) error {
			hb.AddBusy(1)
			t := time.NewTicker(5 * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-t.C:
					hb.Beat()
				}
			}
		})
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("supervisor did not stop on context cancellation")
	}
	if exits.Load() != 0 {
		t.Errorf("beating task was killed %d times, want 0", exits.Load())
	}
}
