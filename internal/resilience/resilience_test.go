package resilience

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"harassrepro/internal/randx"
)

// doc is the test item type: a tiny document with annotation fields.
type doc struct {
	ID    string
	Text  string
	Score float64
	Tags  []string
}

func makeDocs(n int) []doc {
	out := make([]doc, n)
	for i := range out {
		out[i] = doc{ID: fmt.Sprintf("d%03d", i), Text: fmt.Sprintf("document %d body", i)}
	}
	return out
}

func fastRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: 50 * time.Microsecond}
}

func TestRunSliceAllSucceed(t *testing.T) {
	r := NewRunner(Config[doc]{Workers: 4, Seed: 1, Retry: fastRetry()},
		Stage[doc]{Name: "score", Fn: func(_ context.Context, index int, d *doc) error {
			d.Score = float64(index) + 0.5
			return nil
		}},
		Stage[doc]{Name: "tag", Fn: func(_ context.Context, _ int, d *doc) error {
			d.Tags = []string{"t:" + d.ID}
			return nil
		}},
	)
	results, sum, err := r.RunSlice(context.Background(), makeDocs(100))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Processed != 100 || sum.Succeeded != 100 || sum.Quarantined != 0 || sum.Degraded != 0 {
		t.Fatalf("summary = %v", sum)
	}
	for i, res := range results {
		if res.Index != i {
			t.Fatalf("result %d has index %d: not input order", i, res.Index)
		}
		if res.Status != StatusOK || res.Item.Score != float64(i)+0.5 || len(res.Item.Tags) != 1 {
			t.Fatalf("result %d = %+v", i, res)
		}
	}
}

func TestQuarantineIsolatesPoisonDocuments(t *testing.T) {
	poison := func(i int) bool { return i%17 == 3 }
	r := NewRunner(Config[doc]{Workers: 8, Seed: 2, Retry: fastRetry(),
		Describe: func(d *doc) string { return d.ID }},
		Stage[doc]{Name: "parse", Fn: func(_ context.Context, index int, d *doc) error {
			if poison(index) {
				return fmt.Errorf("unparseable document %d", index)
			}
			d.Score = 1
			return nil
		}},
	)
	results, sum, err := r.RunSlice(context.Background(), makeDocs(60))
	if err != nil {
		t.Fatal(err)
	}
	wantDead := 0
	for i := 0; i < 60; i++ {
		if poison(i) {
			wantDead++
		}
	}
	if sum.Quarantined != wantDead || sum.Succeeded != 60-wantDead {
		t.Fatalf("summary = %v, want %d quarantined", sum, wantDead)
	}
	for _, res := range results {
		if poison(res.Index) {
			if res.Status != StatusQuarantined || res.Dead == nil {
				t.Fatalf("poison doc %d not quarantined: %+v", res.Index, res)
			}
			if res.Dead.Stage != "parse" || res.Dead.ID != res.Item.ID || res.Dead.Attempts != 1 {
				t.Fatalf("dead letter = %+v", res.Dead)
			}
		} else if res.Status != StatusOK {
			t.Fatalf("healthy doc %d got %v", res.Index, res.Status)
		}
	}
	// Dead letters arrive sorted by input index.
	for i := 1; i < len(sum.DeadLetters); i++ {
		if sum.DeadLetters[i].Index <= sum.DeadLetters[i-1].Index {
			t.Fatal("dead letters not sorted by index")
		}
	}
	if !strings.Contains(sum.DeadLetters[0].String(), "parse") {
		t.Errorf("dead letter string lacks stage: %s", sum.DeadLetters[0])
	}
}

func TestPanicRecoveryQuarantinesNotCrashes(t *testing.T) {
	r := NewRunner(Config[doc]{Workers: 4, Seed: 3, Retry: fastRetry()},
		Stage[doc]{Name: "boom", Fn: func(_ context.Context, index int, d *doc) error {
			if index == 5 {
				panic("nil pointer dereference simulation")
			}
			return nil
		}},
	)
	results, sum, err := r.RunSlice(context.Background(), makeDocs(10))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Quarantined != 1 || sum.Succeeded != 9 {
		t.Fatalf("summary = %v", sum)
	}
	dead := results[5]
	if dead.Status != StatusQuarantined {
		t.Fatalf("panicking doc not quarantined: %+v", dead)
	}
	var pe *PanicError
	if !errors.As(dead.Dead.Err, &pe) {
		t.Fatalf("dead letter error is %T, want *PanicError", dead.Dead.Err)
	}
	if len(pe.Stack) == 0 || !strings.Contains(pe.Error(), "nil pointer") {
		t.Errorf("panic error incomplete: %v", pe)
	}
}

func TestTransientRetrySucceedsAndCountsAttempts(t *testing.T) {
	var attempts atomic.Int64
	r2 := NewRunner(Config[doc]{Workers: 1, Seed: 4, Retry: fastRetry()},
		Stage[doc]{Name: "flaky", Transient: true, Fn: func(_ context.Context, _ int, d *doc) error {
			if attempts.Add(1) < 3 {
				return errors.New("temporary backend hiccup")
			}
			d.Score = 7
			return nil
		}},
	)
	results, sum, err := r2.RunSlice(context.Background(), makeDocs(1))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Succeeded != 1 || results[0].Item.Score != 7 {
		t.Fatalf("flaky stage did not recover: %v %+v", sum, results[0])
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
}

func TestRetryExhaustionRecordsAttemptCount(t *testing.T) {
	r := NewRunner(Config[doc]{Workers: 2, Seed: 5, Retry: fastRetry()},
		Stage[doc]{Name: "alwaysdown", Transient: true, Fn: func(_ context.Context, _ int, _ *doc) error {
			return errors.New("backend unreachable")
		}},
	)
	results, sum, err := r.RunSlice(context.Background(), makeDocs(3))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Quarantined != 3 {
		t.Fatalf("summary = %v", sum)
	}
	for _, res := range results {
		if res.Dead.Attempts != 4 {
			t.Fatalf("attempts = %d, want MaxAttempts=4", res.Dead.Attempts)
		}
	}
}

func TestErrorMarkersOverrideStagePolicy(t *testing.T) {
	// Permanent marker inside a transient stage fails fast.
	var permCalls atomic.Int64
	r := NewRunner(Config[doc]{Workers: 1, Seed: 6, Retry: fastRetry()},
		Stage[doc]{Name: "validate", Transient: true, Fn: func(_ context.Context, _ int, _ *doc) error {
			permCalls.Add(1)
			return Permanent(errors.New("schema violation"))
		}},
	)
	_, sum, _ := r.RunSlice(context.Background(), makeDocs(1))
	if sum.Quarantined != 1 || permCalls.Load() != 1 {
		t.Fatalf("permanent marker retried: calls=%d sum=%v", permCalls.Load(), sum)
	}
	// Transient marker inside a non-transient stage retries.
	var transCalls atomic.Int64
	r2 := NewRunner(Config[doc]{Workers: 1, Seed: 6, Retry: fastRetry()},
		Stage[doc]{Name: "strict", Fn: func(_ context.Context, _ int, d *doc) error {
			if transCalls.Add(1) < 2 {
				return Transient(errors.New("blip"))
			}
			return nil
		}},
	)
	_, sum2, _ := r2.RunSlice(context.Background(), makeDocs(1))
	if sum2.Succeeded != 1 || transCalls.Load() != 2 {
		t.Fatalf("transient marker not retried: calls=%d sum=%v", transCalls.Load(), sum2)
	}
	if !IsTransient(Transient(errors.New("x"))) || !IsPermanent(Permanent(errors.New("x"))) {
		t.Error("marker predicates broken")
	}
	if Transient(nil) != nil || Permanent(nil) != nil {
		t.Error("nil markers should stay nil")
	}
}

func TestDegradationEmitsInsteadOfDropping(t *testing.T) {
	r := NewRunner(Config[doc]{Workers: 4, Seed: 7, Retry: fastRetry()},
		Stage[doc]{Name: "score", Fn: func(_ context.Context, index int, d *doc) error {
			d.Score = float64(index)
			return nil
		}},
		Stage[doc]{Name: "pii", Degradable: true, Fn: func(_ context.Context, index int, d *doc) error {
			if index%2 == 0 {
				return errors.New("extractor crashed")
			}
			d.Tags = append([]string{}, "pii-ok")
			return nil
		}},
	)
	results, sum, err := r.RunSlice(context.Background(), makeDocs(10))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Quarantined != 0 || sum.Succeeded != 10 || sum.Degraded != 5 {
		t.Fatalf("summary = %v", sum)
	}
	for _, res := range results {
		if res.Index%2 == 0 {
			if res.Status != StatusDegraded || len(res.Degraded) != 1 || res.Degraded[0] != "pii" {
				t.Fatalf("doc %d not degraded correctly: %+v", res.Index, res)
			}
			// The earlier stage's work is preserved.
			if res.Item.Score != float64(res.Index) {
				t.Fatalf("degraded doc %d lost score", res.Index)
			}
		} else if res.Status != StatusOK {
			t.Fatalf("doc %d status %v", res.Index, res.Status)
		}
	}
}

func TestFailedAttemptDoesNotCommitPartialMutation(t *testing.T) {
	var attempts atomic.Int64
	r := NewRunner(Config[doc]{Workers: 1, Seed: 8, Retry: fastRetry()},
		Stage[doc]{Name: "mutator", Transient: true, Fn: func(_ context.Context, _ int, d *doc) error {
			d.Text = d.Text + "+garbage" // mutate, then maybe fail
			if attempts.Add(1) < 3 {
				return errors.New("failed after partial write")
			}
			return nil
		}},
	)
	results, _, err := r.RunSlice(context.Background(), makeDocs(1))
	if err != nil {
		t.Fatal(err)
	}
	// Only the successful attempt's single mutation is visible.
	if got := results[0].Item.Text; strings.Count(got, "+garbage") != 1 {
		t.Fatalf("partial mutations leaked across retries: %q", got)
	}
}

func TestStageTimeoutAbandonsStuckAttempt(t *testing.T) {
	var attempts atomic.Int64
	r := NewRunner(Config[doc]{Workers: 2, Seed: 9, Retry: fastRetry()},
		Stage[doc]{Name: "slow", Transient: true, Timeout: 5 * time.Millisecond,
			Fn: func(ctx context.Context, _ int, d *doc) error {
				if attempts.Add(1) == 1 {
					// First attempt wedges until well past the deadline.
					select {
					case <-time.After(200 * time.Millisecond):
					case <-ctx.Done():
						<-time.After(1 * time.Millisecond) // linger past abandonment
					}
					return nil
				}
				d.Score = 42
				return nil
			}},
	)
	start := time.Now()
	results, sum, err := r.RunSlice(context.Background(), makeDocs(1))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Succeeded != 1 || results[0].Item.Score != 42 {
		t.Fatalf("timeout retry failed: %v %+v", sum, results[0])
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Errorf("worker waited for the stuck attempt: %v", elapsed)
	}
}

func TestContextCancellationStopsRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	r := NewRunner(Config[doc]{Workers: 2, Seed: 10, Retry: fastRetry()},
		Stage[doc]{Name: "gate", Fn: func(ctx context.Context, _ int, _ *doc) error {
			if started.Add(1) == 4 {
				cancel()
			}
			return ctx.Err()
		}},
	)
	results, _, err := r.RunSlice(ctx, makeDocs(1000))
	if err == nil {
		t.Fatal("expected context error")
	}
	if len(results) >= 1000 {
		t.Fatalf("cancellation did not stop intake: %d results", len(results))
	}
}

func TestProcessOrderedStreaming(t *testing.T) {
	r := NewRunner(Config[doc]{Workers: 4, Seed: 11, Retry: fastRetry(), Ordered: true},
		Stage[doc]{Name: "jittery", Fn: func(_ context.Context, index int, d *doc) error {
			// Vary work so completion order differs from input order.
			time.Sleep(time.Duration((index%7)*100) * time.Microsecond)
			d.Score = float64(index)
			return nil
		}},
	)
	in := make(chan doc)
	go func() {
		defer close(in)
		for _, d := range makeDocs(200) {
			in <- d
		}
	}()
	next := 0
	for res := range r.Process(context.Background(), in) {
		if res.Index != next {
			t.Fatalf("ordered stream emitted index %d, want %d", res.Index, next)
		}
		next++
	}
	if next != 200 {
		t.Fatalf("stream emitted %d results", next)
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []Result[doc] {
		r := NewRunner(Config[doc]{Workers: workers, Seed: 42, Retry: fastRetry()},
			Stage[doc]{Name: "score", Fn: func(_ context.Context, index int, d *doc) error {
				// Deterministic per-item randomness, derived the way
				// stages are meant to: from (seed, item index).
				rng := randx.New(42).Split("score").SplitN("doc", index)
				d.Score = rng.Float64()
				return nil
			}},
		)
		results, _, err := r.RunSlice(context.Background(), makeDocs(64))
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	a, b := run(1), run(8)
	for i := range a {
		if a[i].Item.Score != b[i].Item.Score {
			t.Fatalf("doc %d: score %v (1 worker) != %v (8 workers)", i, a[i].Item.Score, b[i].Item.Score)
		}
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	a := randx.New(9).Split("jitter")
	b := randx.New(9).Split("jitter")
	for attempt := 1; attempt <= 8; attempt++ {
		da, db := p.backoff(attempt, a), p.backoff(attempt, b)
		if da != db {
			t.Fatalf("jitter nondeterministic at attempt %d: %v vs %v", attempt, da, db)
		}
		if da < 0 || da > p.MaxDelay {
			t.Fatalf("backoff %v outside [0, %v]", da, p.MaxDelay)
		}
	}
}

func TestStatusAndSummaryStrings(t *testing.T) {
	for s, want := range map[Status]string{StatusOK: "ok", StatusDegraded: "degraded", StatusQuarantined: "quarantined"} {
		if s.String() != want {
			t.Errorf("Status(%d).String() = %q", int(s), s.String())
		}
	}
	sum := Summary{Processed: 5, Succeeded: 4, Quarantined: 1}
	if !strings.Contains(sum.String(), "processed=5") || !strings.Contains(sum.String(), "quarantined=1") {
		t.Errorf("summary string = %q", sum.String())
	}
}
