package resilience

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock for breaker transition tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2021, 11, 2, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, OpenTimeout: time.Second, Now: clock.Now})

	if got := b.State(); got != BreakerClosed {
		t.Fatalf("initial state = %v, want closed", got)
	}
	b.Failure()
	b.Failure()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused traffic")
	}
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after 3 failures = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted traffic before the timeout")
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 2, OpenTimeout: time.Second, Now: clock.Now})
	// failure, success, failure: never two consecutive, stays closed.
	b.Failure()
	b.Success()
	b.Failure()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed (success reset the streak)", got)
	}
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
}

func TestBreakerHalfOpenProbeAndClose(t *testing.T) {
	clock := newFakeClock()
	var transitions []BreakerState
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 1,
		OpenTimeout:      time.Second,
		HalfOpenProbes:   2,
		Now:              clock.Now,
		OnTransition:     func(_, to BreakerState) { transitions = append(transitions, to) },
	})
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}

	// Just before the timeout: still open.
	clock.Advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("open breaker admitted traffic 1ms early")
	}
	// At the timeout: half-open, exactly HalfOpenProbes admissions.
	clock.Advance(time.Millisecond)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after timeout = %v, want half-open", got)
	}
	if !b.Allow() || !b.Allow() {
		t.Fatal("half-open breaker refused its probe budget")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted more than HalfOpenProbes")
	}

	// One success is not enough with HalfOpenProbes=2; two close it.
	b.Success()
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after 1/2 probe successes = %v, want half-open", got)
	}
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after 2/2 probe successes = %v, want closed", got)
	}
	want := []BreakerState{BreakerOpen, BreakerHalfOpen, BreakerClosed}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenTimeout: time.Second, Now: clock.Now})
	b.Failure()
	clock.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker refused its probe")
	}
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after probe failure = %v, want open", got)
	}
	// The reopen restarts the timeout from the failure, not the
	// original opening.
	clock.Advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("reopened breaker admitted traffic before a full fresh timeout")
	}
	clock.Advance(time.Millisecond)
	if !b.Allow() {
		t.Fatal("reopened breaker never reached half-open again")
	}
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed", got)
	}
}

func TestBreakerLateSuccessWhileOpenIsIgnored(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenTimeout: time.Second, Now: clock.Now})
	b.Failure()
	b.Success() // late result from before the incident
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open (late success must not close)", got)
	}
	// A failure while open refreshes the timeout.
	clock.Advance(500 * time.Millisecond)
	b.Failure()
	clock.Advance(600 * time.Millisecond) // 1.1s after opening, 0.6s after refresh
	if b.Allow() {
		t.Fatal("refreshed open breaker admitted traffic early")
	}
	clock.Advance(400 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker never admitted the probe after the refreshed timeout")
	}
}
