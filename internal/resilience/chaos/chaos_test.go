package chaos

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"harassrepro/internal/resilience"
)

type item struct {
	ID    string
	Text  string
	Score float64
}

func makeItems(n int) []item {
	out := make([]item, n)
	for i := range out {
		out[i] = item{ID: fmt.Sprintf("i%03d", i), Text: strings.Repeat("x", 40)}
	}
	return out
}

func scoreStage() resilience.Stage[item] {
	return resilience.Stage[item]{
		Name:      "score",
		Transient: true,
		Fn: func(_ context.Context, index int, it *item) error {
			it.Score = float64(index) * 0.25
			return nil
		},
	}
}

func retry() resilience.RetryPolicy {
	return resilience.RetryPolicy{MaxAttempts: 6, BaseDelay: time.Microsecond, MaxDelay: 20 * time.Microsecond}
}

// TestInjectionDeterministic: two identical chaotic runs make identical
// injection decisions and produce identical outcomes.
func TestInjectionDeterministic(t *testing.T) {
	run := func(workers int) ([]resilience.Result[item], resilience.Summary) {
		cfg := Config{Seed: 77, TransientRate: 0.2, PanicRate: 0.05, PermanentRate: 0.08}
		r := resilience.NewRunner(resilience.Config[item]{Workers: workers, Seed: 77, Retry: retry()},
			Wrap(scoreStage(), cfg))
		results, sum, err := r.RunSlice(context.Background(), makeItems(120))
		if err != nil {
			t.Fatal(err)
		}
		return results, sum
	}
	r1, s1 := run(1)
	r2, s2 := run(8)
	if s1.String() != s2.String() {
		t.Fatalf("summaries differ across worker counts: %v vs %v", s1, s2)
	}
	for i := range r1 {
		if r1[i].Status != r2[i].Status || r1[i].Item.Score != r2[i].Item.Score {
			t.Fatalf("item %d differs across worker counts: %+v vs %+v", i, r1[i], r2[i])
		}
	}
}

// TestPoisonItemsQuarantinedExactly: the quarantine set is exactly
// PoisonIndexes, and every poison item exhausts the retry budget.
func TestPoisonItemsQuarantinedExactly(t *testing.T) {
	cfg := Config{Seed: 5, TransientRate: 0.05, PanicRate: 0.01, PermanentRate: 0.1}
	n := 200
	want := PoisonIndexes(cfg, "score", n)
	if len(want) == 0 || len(want) == n {
		t.Fatalf("degenerate poison set: %d of %d", len(want), n)
	}
	r := resilience.NewRunner(resilience.Config[item]{Workers: 6, Seed: 5, Retry: retry()},
		Wrap(scoreStage(), cfg))
	results, sum, err := r.RunSlice(context.Background(), makeItems(n))
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	for _, res := range results {
		if res.Status == resilience.StatusQuarantined {
			got = append(got, res.Index)
			if res.Dead.Attempts != 6 {
				t.Errorf("poison item %d quarantined after %d attempts, want 6", res.Index, res.Dead.Attempts)
			}
			if !errors.Is(res.Dead.Err, ErrInjected) {
				t.Errorf("dead letter not marked injected: %v", res.Dead.Err)
			}
		}
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("quarantined %v, want exactly poison set %v", got, want)
	}
	if sum.Quarantined != len(want) || sum.Succeeded != n-len(want) {
		t.Fatalf("summary = %v", sum)
	}
}

// TestTransientAndPanicFaultsAreAbsorbed: with moderate transient and
// panic rates and no poison items, every item completes with the same
// score a fault-free run produces.
func TestTransientAndPanicFaultsAreAbsorbed(t *testing.T) {
	n := 150
	clean := resilience.NewRunner(resilience.Config[item]{Workers: 4, Seed: 9, Retry: retry()}, scoreStage())
	cleanRes, _, err := clean.RunSlice(context.Background(), makeItems(n))
	if err != nil {
		t.Fatal(err)
	}
	chaotic := resilience.NewRunner(resilience.Config[item]{Workers: 4, Seed: 9, Retry: retry()},
		Wrap(scoreStage(), Config{Seed: 9, TransientRate: 0.1, PanicRate: 0.02}))
	chaosRes, sum, err := chaotic.RunSlice(context.Background(), makeItems(n))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Quarantined != 0 || sum.Succeeded != n {
		t.Fatalf("faults leaked through retries: %v", sum)
	}
	for i := range cleanRes {
		if cleanRes[i].Item.Score != chaosRes[i].Item.Score {
			t.Fatalf("item %d: chaotic score %v != clean score %v", i, chaosRes[i].Item.Score, cleanRes[i].Item.Score)
		}
	}
}

// TestLatencySpikesCutByStageDeadline: injected latency above the
// stage deadline turns into a retryable timeout, and the run still
// completes with correct results.
func TestLatencySpikesCutByStageDeadline(t *testing.T) {
	st := scoreStage()
	st.Timeout = 3 * time.Millisecond
	var calls atomic.Int64
	inner := st.Fn
	st.Fn = func(ctx context.Context, index int, it *item) error {
		calls.Add(1)
		return inner(ctx, index, it)
	}
	r := resilience.NewRunner(resilience.Config[item]{Workers: 4, Seed: 13, Retry: retry()},
		Wrap(st, Config{Seed: 13, LatencyRate: 0.3, Latency: 50 * time.Millisecond}))
	results, sum, err := r.RunSlice(context.Background(), makeItems(40))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Succeeded != 40 {
		t.Fatalf("latency spikes caused loss: %v", sum)
	}
	for _, res := range results {
		if res.Item.Score != float64(res.Index)*0.25 {
			t.Fatalf("item %d score %v", res.Index, res.Item.Score)
		}
	}
}

// TestTruncationCorruptsOnlyInjectedAttempts: truncated input reaches
// the stage, which can reject it (Permanent) so the item quarantines,
// proving the harness exercises the malformed-input path.
func TestTruncationCorruptsOnlyInjectedAttempts(t *testing.T) {
	st := resilience.Stage[item]{
		Name: "parse",
		Fn: func(_ context.Context, _ int, it *item) error {
			if len(it.Text) < 40 {
				return resilience.Permanent(errors.New("truncated input"))
			}
			it.Score = 1
			return nil
		},
	}
	cfg := Config{Seed: 21, TruncateRate: 0.15, Truncate: func(v any) {
		it := v.(*item)
		it.Text = it.Text[:len(it.Text)/2]
	}}
	r := resilience.NewRunner(resilience.Config[item]{Workers: 4, Seed: 21, Retry: retry()}, Wrap(st, cfg))
	results, sum, err := r.RunSlice(context.Background(), makeItems(100))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Quarantined == 0 || sum.Quarantined == 100 {
		t.Fatalf("truncation rate not exercised: %v", sum)
	}
	// Non-quarantined items kept their full text: the truncating
	// attempt's copy never leaked into committed state.
	for _, res := range results {
		if res.Status == resilience.StatusOK && len(res.Item.Text) != 40 {
			t.Fatalf("committed item %d has truncated text", res.Index)
		}
	}
}
