// Package chaos is a deterministic fault-injection harness for the
// resilience runtime. It wraps any Stage so that seeded transient
// errors, panics, latency spikes and truncated input are injected
// before the real stage runs — the reproduction's stand-in for crawler
// hiccups, flaky annotation services and slow scoring backends.
//
// Every injection decision is a pure function of (seed, stage name,
// item index, attempt number), never of wall-clock time or scheduling,
// so a chaotic run is exactly reproducible: the chaos test suite in
// internal/core relies on this to assert that a faulty run produces
// scores identical to a fault-free run for every non-quarantined
// document.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"harassrepro/internal/randx"
	"harassrepro/internal/resilience"
)

// ErrInjected is the sentinel wrapped by every chaos-injected failure;
// test assertions can errors.Is against it.
var ErrInjected = errors.New("chaos: injected fault")

// Config controls the fault mix. Rates are per attempt (except
// PermanentRate, which is per item) and independent: one attempt can
// suffer latency and then a transient error.
type Config struct {
	// Seed drives every injection decision.
	Seed uint64
	// TransientRate is the per-attempt probability of failing with a
	// Transient-marked error before the stage runs.
	TransientRate float64
	// PanicRate is the per-attempt probability of panicking.
	PanicRate float64
	// PermanentRate is the per-item probability that the item fails on
	// every attempt of the wrapped stage (a poison document): the run
	// must quarantine exactly these items.
	PermanentRate float64
	// LatencyRate is the per-attempt probability of sleeping Latency
	// before the stage runs (honouring the attempt context, so stage
	// deadlines cut the spike short).
	LatencyRate float64
	// Latency is the injected spike duration. 0 means 10ms.
	Latency time.Duration
	// TruncateRate is the per-attempt probability of passing the stage
	// a truncated view of the item via Truncate.
	TruncateRate float64
	// Truncate mutates the attempt's private copy of the item to
	// simulate truncated input (for example halving the document
	// text). Required when TruncateRate > 0.
	Truncate func(item any)
}

// attemptCounter tracks per-item attempt numbers for one wrapped
// stage. Attempts for a single item run sequentially, but distinct
// items hit the counter concurrently from different workers.
type attemptCounter struct {
	mu sync.Mutex
	n  map[int]int
}

func (c *attemptCounter) next(index int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n == nil {
		c.n = map[int]int{}
	}
	c.n[index]++
	return c.n[index]
}

// Wrap returns a stage identical to st except that seeded faults are
// injected ahead of its Fn. The wrapped stage keeps st's name, retry
// and degradation semantics.
func Wrap[T any](st resilience.Stage[T], cfg Config) resilience.Stage[T] {
	if cfg.Latency <= 0 {
		cfg.Latency = 10 * time.Millisecond
	}
	counter := &attemptCounter{}
	base := randx.New(cfg.Seed).Split("chaos").Split(st.Name)
	inner := st.Fn
	st.Fn = func(ctx context.Context, index int, item *T) error {
		attempt := counter.next(index)
		itemRng := base.SplitN("item", index)
		// Poison documents fail on every attempt: the injected error
		// is Transient-marked, so the runner burns its full retry
		// budget before quarantining — exercising attempt accounting.
		if cfg.PermanentRate > 0 && itemRng.Split("poison").Bool(cfg.PermanentRate) {
			return resilience.Transient(fmt.Errorf("%w: poison item %d in stage %q", ErrInjected, index, st.Name))
		}
		rng := itemRng.SplitN("attempt", attempt)
		if cfg.LatencyRate > 0 && rng.Split("latency").Bool(cfg.LatencyRate) {
			t := time.NewTimer(cfg.Latency)
			select {
			case <-ctx.Done():
				t.Stop()
				return resilience.Transient(fmt.Errorf("%w: latency spike cut by deadline: %v", ErrInjected, ctx.Err()))
			case <-t.C:
			}
		}
		if cfg.PanicRate > 0 && rng.Split("panic").Bool(cfg.PanicRate) {
			panic(resilience.Transient(fmt.Errorf("%w: panic in stage %q item %d attempt %d", ErrInjected, st.Name, index, attempt)))
		}
		if cfg.TransientRate > 0 && rng.Split("transient").Bool(cfg.TransientRate) {
			return resilience.Transient(fmt.Errorf("%w: transient failure in stage %q item %d attempt %d", ErrInjected, st.Name, index, attempt))
		}
		if cfg.TruncateRate > 0 && rng.Split("truncate").Bool(cfg.TruncateRate) {
			// The runner hands each attempt a private copy, so
			// truncation only corrupts this attempt's view.
			cfg.Truncate(item)
		}
		return inner(ctx, index, item)
	}
	return st
}

// PoisonIndexes returns the item indexes in [0, n) that cfg marks as
// permanently failing for the given stage name — the exact quarantine
// set a chaotic run must produce.
func PoisonIndexes(cfg Config, stageName string, n int) []int {
	base := randx.New(cfg.Seed).Split("chaos").Split(stageName)
	var out []int
	for i := 0; i < n; i++ {
		if cfg.PermanentRate > 0 && base.SplitN("item", i).Split("poison").Bool(cfg.PermanentRate) {
			out = append(out, i)
		}
	}
	return out
}
