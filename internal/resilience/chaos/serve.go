package chaos

// Serve-layer fault plan: the chaos harness for the sharded scoring
// service. A ServePlan injects shard panics, hard stalls and latency
// spikes into shard collect loops via serve.FaultInjector (implemented
// structurally — this package never imports serve). Wired to the
// `harassd -chaos` flag and to the chaos-certification tests, which
// assert that under a seeded plan every admitted request still gets
// exactly one terminal answer and unfaulted shards score bit-identically
// to a fault-free run.
//
// Every decision is a pure function of (seed, shard, generation, result
// index): a chaotic serve run is reproducible regardless of scheduling.

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"harassrepro/internal/randx"
)

// ServePlan decides serve-layer faults. Rates are per delivered result
// and checked in order panic, stall, spike (at most one fault per
// result). The zero value injects nothing.
type ServePlan struct {
	// Seed drives every decision.
	Seed uint64
	// PanicRate is the probability a result delivery panics the shard's
	// collect loop (the generation dies; its pending documents are
	// redispatched).
	PanicRate float64
	// StallRate is the probability the collect loop wedges — blocking
	// until the supervisor's heartbeat watchdog kills the generation.
	StallRate float64
	// SpikeRate is the probability of a latency spike of Spike before
	// the delivery (bounded, honours the generation context).
	SpikeRate float64
	// Spike is the injected spike duration. 0 means 10ms.
	Spike time.Duration
	// Targets restricts faults to these shard IDs; nil or empty means
	// every shard is eligible.
	Targets map[int]bool
	// MaxFaults bounds the disruptive faults (panics + stalls) injected
	// over the plan's lifetime, so a long run converges instead of
	// dying forever. 0 means unbounded.
	MaxFaults int

	disruptive atomic.Int64
}

// BeforeDeliver implements the serve fault-injection hook. It runs in
// shard `shard`'s generation `gen` ahead of its n-th result delivery
// and either returns nil (no fault), panics, blocks until ctx is done
// (hard stall), or sleeps briefly (latency spike).
func (p *ServePlan) BeforeDeliver(ctx context.Context, shard, gen, n int) error {
	if p == nil {
		return nil
	}
	if len(p.Targets) > 0 && !p.Targets[shard] {
		return nil
	}
	rng := randx.New(p.Seed).Split("chaos-serve").SplitN("shard", shard).SplitN("gen", gen).SplitN("res", n)
	if p.PanicRate > 0 && rng.Split("panic").Bool(p.PanicRate) && p.takeDisruptive() {
		panic(fmt.Errorf("%w: serve panic in shard %d gen %d result %d", ErrInjected, shard, gen, n))
	}
	if p.StallRate > 0 && rng.Split("stall").Bool(p.StallRate) && p.takeDisruptive() {
		// Hard stall: no progress until the watchdog cancels the
		// generation. The error marks the exit as chaos-induced.
		<-ctx.Done()
		return fmt.Errorf("%w: serve stall in shard %d gen %d result %d: %v", ErrInjected, shard, gen, n, ctx.Err())
	}
	if p.SpikeRate > 0 && rng.Split("spike").Bool(p.SpikeRate) {
		spike := p.Spike
		if spike <= 0 {
			spike = 10 * time.Millisecond
		}
		t := time.NewTimer(spike)
		defer t.Stop()
		select {
		case <-ctx.Done():
		case <-t.C:
		}
	}
	return nil
}

// Disrupted reports the disruptive faults (panics + stalls) injected so
// far.
func (p *ServePlan) Disrupted() int { return int(p.disruptive.Load()) }

// takeDisruptive claims one unit of the MaxFaults budget.
func (p *ServePlan) takeDisruptive() bool {
	n := p.disruptive.Add(1)
	if p.MaxFaults > 0 && n > int64(p.MaxFaults) {
		p.disruptive.Add(-1)
		return false
	}
	return true
}

// ParseServePlan parses the `harassd -chaos` flag syntax: comma-
// separated key=value pairs, e.g.
//
//	seed=7,panic=0.02,stall=0.004,spike=0.05,spike-ms=20,shards=0+2,max-faults=40
//
// Keys: seed (uint), panic/stall/spike (probabilities in [0,1]),
// spike-ms (spike duration, milliseconds), shards (plus-separated shard
// IDs to target; omit for all), max-faults (cap on panics + stalls).
// An empty spec returns (nil, nil): chaos disabled.
func ParseServePlan(spec string) (*ServePlan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &ServePlan{}
	for _, pair := range strings.Split(spec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		key, val, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("chaos: bad plan entry %q: want key=value", pair)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "seed":
			u, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad seed %q: %w", val, err)
			}
			p.Seed = u
		case "panic", "stall", "spike":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return nil, fmt.Errorf("chaos: bad rate %s=%q: want a probability in [0,1]", key, val)
			}
			switch key {
			case "panic":
				p.PanicRate = f
			case "stall":
				p.StallRate = f
			case "spike":
				p.SpikeRate = f
			}
		case "spike-ms":
			ms, err := strconv.Atoi(val)
			if err != nil || ms < 0 {
				return nil, fmt.Errorf("chaos: bad spike-ms %q", val)
			}
			p.Spike = time.Duration(ms) * time.Millisecond
		case "shards":
			p.Targets = map[int]bool{}
			for _, idStr := range strings.Split(val, "+") {
				id, err := strconv.Atoi(strings.TrimSpace(idStr))
				if err != nil || id < 0 {
					return nil, fmt.Errorf("chaos: bad shard id %q in %q", idStr, val)
				}
				p.Targets[id] = true
			}
		case "max-faults":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("chaos: bad max-faults %q", val)
			}
			p.MaxFaults = n
		default:
			return nil, fmt.Errorf("chaos: unknown plan key %q (want seed, panic, stall, spike, spike-ms, shards, max-faults)", key)
		}
	}
	return p, nil
}
