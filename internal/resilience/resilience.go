// Package resilience is the fault-tolerant document-processing runtime
// underneath the streaming ingest and scoring paths. The paper's
// measurement system ran continuously over five live platform feeds
// (405.9M board posts, 70.3M chat messages, ...), where crawler
// hiccups, malformed records and slow stages are the norm; this package
// provides the equivalent robustness layer for the reproduction:
//
//   - a bounded worker-pool executor (Runner) with context cancellation
//     and per-stage attempt deadlines;
//   - per-document panic recovery and error isolation: a poison
//     document is quarantined to a dead-letter queue (recording the
//     failing stage, error and attempt count) instead of killing the
//     run;
//   - retry with exponential backoff and seeded jitter, driven by
//     randx so that runs remain deterministic;
//   - graceful degradation: stages marked Degradable annotate the
//     document as degraded on permanent failure instead of dropping it.
//
// Determinism contract: every per-item random stream (retry jitter,
// span sampling inside stage functions, chaos injection) is derived
// from (seed, stage name, item index) via randx.Split/SplitN, never
// from wall-clock time or scheduling order. Worker scheduling therefore
// affects only completion order, which Reorder and RunSlice normalise
// back to input order.
package resilience

import (
	"fmt"
	"runtime/debug"
)

// Status classifies the outcome of processing one item.
type Status int

const (
	// StatusOK: every stage succeeded.
	StatusOK Status = iota
	// StatusDegraded: at least one Degradable stage failed permanently;
	// the item was still emitted with those annotations marked degraded.
	StatusDegraded
	// StatusQuarantined: a required stage failed permanently; the item
	// was sent to the dead-letter queue.
	StatusQuarantined
)

// String returns the lower-case status name.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusDegraded:
		return "degraded"
	case StatusQuarantined:
		return "quarantined"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// DeadLetter is one quarantined item: the poison-document record the
// runtime emits instead of aborting the run.
type DeadLetter struct {
	// Index is the item's position in the input stream (0-based).
	Index int
	// ID identifies the item when the runner was configured with a
	// Describe function; otherwise empty.
	ID string
	// Stage is the name of the stage that failed permanently.
	Stage string
	// Attempts is how many times the failing stage ran.
	Attempts int
	// Err is the final error (a PanicError if the stage panicked).
	Err error
}

func (d DeadLetter) String() string {
	id := d.ID
	if id == "" {
		id = fmt.Sprintf("#%d", d.Index)
	}
	return fmt.Sprintf("%s: stage %q failed after %d attempt(s): %v", id, d.Stage, d.Attempts, d.Err)
}

// PanicError is a recovered stage panic, preserved as an error so a
// panicking stage is handled by the same retry/quarantine machinery as
// a failing one.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// capturePanic converts a recovered panic value into a PanicError.
func capturePanic(v any) error {
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// Result is the outcome of running every stage over one item.
type Result[T any] struct {
	// Index is the item's position in the input stream.
	Index int
	// Item is the item's final state. For quarantined items it holds
	// the state reached before the fatal stage.
	Item T
	// Status classifies the outcome.
	Status Status
	// Degraded lists the Degradable stages that failed permanently.
	Degraded []string
	// Dead is set when Status is StatusQuarantined.
	Dead *DeadLetter
}

// Summary aggregates the outcomes of a run: the CLI tools print it as
// the final processed/succeeded/quarantined line.
type Summary struct {
	Processed   int
	Succeeded   int
	Degraded    int
	Quarantined int
	// DeadLetters holds the quarantine records, in input order.
	DeadLetters []DeadLetter
}

func (s Summary) String() string {
	return fmt.Sprintf("processed=%d succeeded=%d degraded=%d quarantined=%d",
		s.Processed, s.Succeeded, s.Degraded, s.Quarantined)
}

// Summarize aggregates results (in any order) into a Summary with
// dead letters sorted by input index.
func Summarize[T any](results []Result[T]) Summary {
	sum := Summary{Processed: len(results)}
	for _, r := range results {
		switch r.Status {
		case StatusOK:
			sum.Succeeded++
		case StatusDegraded:
			sum.Succeeded++
			sum.Degraded++
		case StatusQuarantined:
			sum.Quarantined++
			if r.Dead != nil {
				sum.DeadLetters = append(sum.DeadLetters, *r.Dead)
			}
		}
	}
	sortDeadLetters(sum.DeadLetters)
	return sum
}

func sortDeadLetters(dl []DeadLetter) {
	for i := 1; i < len(dl); i++ {
		for j := i; j > 0 && dl[j].Index < dl[j-1].Index; j-- {
			dl[j], dl[j-1] = dl[j-1], dl[j]
		}
	}
}
