// Package harm implements the paper's harm-risk taxonomy (§7.2, Table 7):
// the PII contained in a dox is mapped to the categories of harm the
// target is at increased risk of — online, physical, economic/identity,
// and reputational — and risk-combination overlap is computed for the
// Venn visualisation of Figure 2.
package harm

import (
	"regexp"
	"sort"
	"strings"

	"harassrepro/internal/pii"
)

// Risk is one harm-risk category of Table 7.
type Risk string

// The four harm-risk categories.
const (
	Online     Risk = "Online"
	Physical   Risk = "Physical"
	Economic   Risk = "Economic / Identity"
	Reputation Risk = "Reputation"
)

// Risks lists the categories in Figure 2 row order.
func Risks() []Risk { return []Risk{Physical, Economic, Online, Reputation} }

// piiRisks is the Table 7 mapping from PII type to harm risk. Reputation
// risk is not PII-derivable; see DetectReputation.
var piiRisks = map[pii.Type][]Risk{
	pii.Email:      {Online, Economic},
	pii.Instagram:  {Online},
	pii.Facebook:   {Online},
	pii.Twitter:    {Online},
	pii.YouTube:    {Online},
	pii.Address:    {Physical},
	pii.CreditCard: {Economic},
	pii.SSN:        {Economic},
}

// FromPII maps extracted PII types to the harm risks they indicate
// (Table 7 rows 1-3: Online, Physical, Economic/Identity).
func FromPII(types []pii.Type) []Risk {
	set := map[Risk]bool{}
	for _, t := range types {
		for _, r := range piiRisks[t] {
			set[r] = true
		}
	}
	return sortedRisks(set)
}

// reReputation detects mentions of family members or employment — the
// information behind Table 7's Reputation row, which the paper annotated
// manually ("*We used manual annotation for the Reputation risk
// category"). This detector stands in for that manual pass.
var reReputation = regexp.MustCompile(`(?i)\b(?:employer|boss|works? at|workplace|place of employment|mother|father|sister|brother|wife|husband|cousin|uncle|parents|family|landlord|school)\b`)

// DetectReputation reports whether the dox text exposes family or
// employment information.
func DetectReputation(text string) bool {
	return reReputation.MatchString(text)
}

// Profile computes the full risk set for one dox: PII-derived risks plus
// reputation detection over the text.
func Profile(types []pii.Type, text string) []Risk {
	set := map[Risk]bool{}
	for _, r := range FromPII(types) {
		set[r] = true
	}
	if DetectReputation(text) {
		set[Reputation] = true
	}
	return sortedRisks(set)
}

func sortedRisks(set map[Risk]bool) []Risk {
	var out []Risk
	for _, r := range Risks() {
		if set[r] {
			out = append(out, r)
		}
	}
	return out
}

// Combination is one column of Figure 2: a distinct set of co-occurring
// harm risks and the number of doxes carrying exactly that set.
type Combination struct {
	Risks []Risk
	Count int
}

// Key renders a canonical key for the combination.
func (c Combination) Key() string {
	parts := make([]string, len(c.Risks))
	for i, r := range c.Risks {
		parts[i] = string(r)
	}
	return strings.Join(parts, "+")
}

// Overlap is the Figure 2 data: per-combination counts (columns) and
// per-risk totals (the right-hand column of the figure).
type Overlap struct {
	Combinations []Combination
	Totals       map[Risk]int
	// NoRisk counts doxes with no detected risk indicator (the paper
	// notes more than 50% of Discord doxes carried none).
	NoRisk int
	Doxes  int
}

// ComputeOverlap tallies risk combinations over per-dox risk sets.
// Combinations are returned sorted by descending count, matching the
// Figure 2 column order.
func ComputeOverlap(perDox [][]Risk) Overlap {
	ov := Overlap{Totals: map[Risk]int{}, Doxes: len(perDox)}
	counts := map[string]Combination{}
	for _, risks := range perDox {
		if len(risks) == 0 {
			ov.NoRisk++
			continue
		}
		for _, r := range risks {
			ov.Totals[r]++
		}
		c := Combination{Risks: risks}
		key := c.Key()
		cur, ok := counts[key]
		if !ok {
			cur = c
		}
		cur.Count++
		counts[key] = cur
	}
	for _, c := range counts {
		ov.Combinations = append(ov.Combinations, c)
	}
	sort.Slice(ov.Combinations, func(i, j int) bool {
		if ov.Combinations[i].Count != ov.Combinations[j].Count {
			return ov.Combinations[i].Count > ov.Combinations[j].Count
		}
		return ov.Combinations[i].Key() < ov.Combinations[j].Key()
	})
	return ov
}

// AllRisksCount returns the number of doxes carrying every risk category
// (the paper: 970, 11.5% of doxes, ~73% of them from pastes).
func (ov Overlap) AllRisksCount() int {
	for _, c := range ov.Combinations {
		if len(c.Risks) == len(Risks()) {
			return c.Count
		}
	}
	return 0
}
