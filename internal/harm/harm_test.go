package harm

import (
	"reflect"
	"testing"

	"harassrepro/internal/pii"
)

func TestFromPIITable7(t *testing.T) {
	cases := []struct {
		types []pii.Type
		want  []Risk
	}{
		{[]pii.Type{pii.Facebook}, []Risk{Online}},
		{[]pii.Type{pii.Twitter, pii.YouTube, pii.Instagram}, []Risk{Online}},
		{[]pii.Type{pii.Address}, []Risk{Physical}},
		{[]pii.Type{pii.SSN}, []Risk{Economic}},
		{[]pii.Type{pii.CreditCard}, []Risk{Economic}},
		// Email carries both online and economic risk (spear phishing).
		{[]pii.Type{pii.Email}, []Risk{Economic, Online}},
		{[]pii.Type{pii.Address, pii.SSN, pii.Twitter}, []Risk{Physical, Economic, Online}},
		{nil, nil},
		// Phone maps to no Table 7 risk class.
		{[]pii.Type{pii.Phone}, nil},
	}
	for _, c := range cases {
		if got := FromPII(c.types); !reflect.DeepEqual(got, c.want) {
			t.Errorf("FromPII(%v) = %v, want %v", c.types, got, c.want)
		}
	}
}

func TestDetectReputation(t *testing.T) {
	positives := []string{
		"he works at the hardware store downtown",
		"tell his boss about this",
		"her mother lives nearby",
		"alert the landlord",
	}
	for _, p := range positives {
		if !DetectReputation(p) {
			t.Errorf("reputation not detected in %q", p)
		}
	}
	negatives := []string{
		"address and phone below",
		"just a regular post about games",
	}
	for _, n := range negatives {
		if DetectReputation(n) {
			t.Errorf("false reputation in %q", n)
		}
	}
}

func TestProfile(t *testing.T) {
	got := Profile([]pii.Type{pii.Address}, "he works at the mill, tell his employer")
	want := []Risk{Physical, Reputation}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Profile = %v, want %v", got, want)
	}
	if got := Profile(nil, "plain text"); got != nil {
		t.Errorf("empty Profile = %v", got)
	}
}

func TestComputeOverlap(t *testing.T) {
	perDox := [][]Risk{
		{Online},
		{Online},
		{Online, Physical},
		{Physical, Economic, Online, Reputation},
		nil, // no indicators (the Discord case)
	}
	ov := ComputeOverlap(perDox)
	if ov.Doxes != 5 || ov.NoRisk != 1 {
		t.Fatalf("doxes/noRisk = %d/%d", ov.Doxes, ov.NoRisk)
	}
	if ov.Totals[Online] != 4 || ov.Totals[Physical] != 2 || ov.Totals[Economic] != 1 || ov.Totals[Reputation] != 1 {
		t.Errorf("totals = %v", ov.Totals)
	}
	// Columns sorted by count: {Online} x2 first.
	if ov.Combinations[0].Count != 2 || ov.Combinations[0].Key() != "Online" {
		t.Errorf("first combination = %+v", ov.Combinations[0])
	}
	if got := ov.AllRisksCount(); got != 1 {
		t.Errorf("AllRisksCount = %d", got)
	}
	// Combination counts sum to doxes - NoRisk.
	sum := 0
	for _, c := range ov.Combinations {
		sum += c.Count
	}
	if sum != ov.Doxes-ov.NoRisk {
		t.Errorf("combination sum = %d, want %d", sum, ov.Doxes-ov.NoRisk)
	}
}

func TestComputeOverlapEmpty(t *testing.T) {
	ov := ComputeOverlap(nil)
	if ov.Doxes != 0 || len(ov.Combinations) != 0 || ov.AllRisksCount() != 0 {
		t.Errorf("empty overlap = %+v", ov)
	}
}

func TestRisksOrder(t *testing.T) {
	want := []Risk{Physical, Economic, Online, Reputation}
	if !reflect.DeepEqual(Risks(), want) {
		t.Errorf("Risks() = %v", Risks())
	}
}
