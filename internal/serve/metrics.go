package serve

// Serving instruments on the shared obs.Registry, alongside the
// backend's own scoring metrics. Every handle is pre-registered at
// construction so the request path stays lock-free: one counter
// increment and one histogram observation per request. Unexpected
// status codes fall back to registry registration (idempotent, locked)
// — rare by construction.
//
// Catalog:
//
//	serve_requests_total{route,code}   counter
//	serve_request_latency_ns{route}    histogram (DurationBuckets)
//	serve_shed_total                   counter   (429 responses)
//	serve_docs_total{status}           counter   (scored documents)
//	serve_batch_docs                   histogram (documents per batch)
//	serve_queue_depth                  gauge     (admitted, unscored docs)
//	serve_inflight_requests            gauge
//	serve_draining                     gauge     (0/1)

import (
	"strconv"
	"time"

	"harassrepro/internal/obs"
	"harassrepro/internal/resilience"
)

var (
	metricRoutes = []string{"score", "batch", "healthz", "readyz"}
	metricCodes  = []int{200, 400, 404, 408, 413, 429, 500, 503, 504}
)

// serverMetrics holds the pre-registered handles. A nil *serverMetrics
// is valid and turns every method into a no-op, so the server runs
// identically without a registry.
type serverMetrics struct {
	reg      *obs.Registry
	requests map[string]map[int]*obs.Counter
	latency  map[string]*obs.Histogram
	shed     *obs.Counter
	docs     map[resilience.Status]*obs.Counter
	batch    *obs.Histogram
	queue    *obs.Gauge
	inflight *obs.Gauge
	draining *obs.Gauge
}

// batchBuckets is the batch-size bucket layout: 1 to 5000 documents in
// 1-2-5 steps.
func batchBuckets() []int64 {
	var out []int64
	for _, scale := range []int64{1, 10, 100, 1000} {
		out = append(out, scale, 2*scale, 5*scale)
	}
	return out
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	if reg == nil {
		return nil
	}
	m := &serverMetrics{
		reg:      reg,
		requests: make(map[string]map[int]*obs.Counter, len(metricRoutes)),
		latency:  make(map[string]*obs.Histogram, len(metricRoutes)),
		docs:     make(map[resilience.Status]*obs.Counter, 3),
		shed:     reg.NewCounter("serve_shed_total", "Requests shed with 429 under overload"),
		batch:    reg.NewHistogram("serve_batch_docs", "Documents per batch request", batchBuckets()),
		queue:    reg.NewGauge("serve_queue_depth", "Admitted documents not yet scored"),
		inflight: reg.NewGauge("serve_inflight_requests", "Admitted score requests being served"),
		draining: reg.NewGauge("serve_draining", "1 while Shutdown is draining the server"),
	}
	for _, route := range metricRoutes {
		byCode := make(map[int]*obs.Counter, len(metricCodes))
		for _, code := range metricCodes {
			byCode[code] = m.requestCounter(route, code)
		}
		m.requests[route] = byCode
		m.latency[route] = reg.NewHistogram("serve_request_latency_ns",
			"Request wall time by route", obs.DurationBuckets(), obs.L("route", route))
	}
	for _, st := range []resilience.Status{resilience.StatusOK, resilience.StatusDegraded, resilience.StatusQuarantined} {
		m.docs[st] = reg.NewCounter("serve_docs_total",
			"Documents scored through the service, by outcome", obs.L("status", st.String()))
	}
	return m
}

func (m *serverMetrics) requestCounter(route string, code int) *obs.Counter {
	return m.reg.NewCounter("serve_requests_total", "HTTP requests by route and status code",
		obs.L("route", route), obs.L("code", strconv.Itoa(code)))
}

func (m *serverMetrics) observeRequest(route string, code int, d time.Duration) {
	if m == nil {
		return
	}
	if c := m.requests[route][code]; c != nil {
		c.Inc()
	} else {
		m.requestCounter(route, code).Inc()
	}
	if h := m.latency[route]; h != nil {
		h.Observe(d.Nanoseconds())
	}
}

func (m *serverMetrics) shedRequest() {
	if m != nil {
		m.shed.Inc()
	}
}

func (m *serverMetrics) docScored(st resilience.Status) {
	if m == nil {
		return
	}
	if c := m.docs[st]; c != nil {
		c.Inc()
	}
}

func (m *serverMetrics) observeBatch(n int) {
	if m != nil {
		m.batch.Observe(int64(n))
	}
}

func (m *serverMetrics) setQueue(n int) {
	if m != nil {
		m.queue.Set(float64(n))
	}
}

func (m *serverMetrics) setInFlight(n int) {
	if m != nil {
		m.inflight.Set(float64(n))
	}
}

func (m *serverMetrics) setDraining(on bool) {
	if m == nil {
		return
	}
	if on {
		m.draining.Set(1)
	} else {
		m.draining.Set(0)
	}
}
