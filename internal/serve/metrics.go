package serve

// Serving instruments on the shared obs.Registry, alongside the
// backend's own scoring metrics. Every handle is pre-registered at
// construction so the request path stays lock-free: one counter
// increment and one histogram observation per request. Unexpected
// status codes fall back to registry registration (idempotent, locked)
// — rare by construction.
//
// Catalog:
//
//	serve_requests_total{route,code}   counter
//	serve_request_latency_ns{route}    histogram (DurationBuckets)
//	serve_shed_total                   counter   (429 responses)
//	serve_docs_total{status}           counter   (scored documents)
//	serve_batch_docs                   histogram (documents per batch)
//	serve_queue_depth                  gauge     (admitted, unscored docs, all shards)
//	serve_inflight_requests            gauge
//	serve_draining                     gauge     (0/1)
//
// Per-shard (label shard="0".."N-1"); the aggregate serve_queue_depth
// is maintained from the same admissions that update the per-shard
// gauges, so the two views cannot disagree with the 429 decisions:
//
//	serve_shard_queue_depth{shard}       gauge
//	serve_shard_state{shard}             gauge   (0 starting, 1 running, 2 down)
//	serve_shard_breaker_state{shard}     gauge   (0 closed, 1 half-open, 2 open)
//	serve_shard_restarts_total{shard}    counter (failed generations)
//	serve_shard_stalls_total{shard}      counter (watchdog kills)
//	serve_shard_panics_total{shard}      counter (captured panics)
//	serve_shard_redispatch_total{shard}  counter (docs moved off this shard)
//	serve_redispatch_total               counter (docs successfully re-homed)
//	serve_redispatch_failed_total        counter (docs answered 503 shard-lost)
//
// Model lifecycle:
//
//	serve_model_generation               gauge     (active model generation)
//	serve_model_swaps_total              counter   (completed hot-swaps)
//	serve_swap_latency_ns                histogram (fleet rotation wall time)
//	serve_feedback_total                 counter   (accepted feedback items)
//	serve_shadow_docs_total              counter   (docs shadow-scored by a candidate)
//	serve_shadow_dropped_total           counter   (sampled docs dropped: shadow queue full)
//	serve_shadow_label_flips_total       counter   (active/candidate label disagreements)
//	serve_shadow_score_delta_micros      histogram (|active - candidate| score delta, 1e-6 units)

import (
	"errors"
	"strconv"
	"time"

	"harassrepro/internal/obs"
	"harassrepro/internal/resilience"
)

var (
	metricRoutes = []string{"score", "batch", "healthz", "readyz", "feedback"}
	metricCodes  = []int{200, 202, 400, 404, 408, 413, 429, 500, 503, 504}
)

// serverMetrics holds the pre-registered handles. A nil *serverMetrics
// is valid and turns every method into a no-op, so the server runs
// identically without a registry.
type serverMetrics struct {
	reg          *obs.Registry
	requests     map[string]map[int]*obs.Counter
	latency      map[string]*obs.Histogram
	shed         *obs.Counter
	docs         map[resilience.Status]*obs.Counter
	batch        *obs.Histogram
	queue        *obs.Gauge
	inflight     *obs.Gauge
	draining     *obs.Gauge
	redisp       *obs.Counter
	redispFailed *obs.Counter
	generation   *obs.Gauge
	swaps        *obs.Counter
	swapLatency  *obs.Histogram
	feedbackC    *obs.Counter
	shadowDocs   *obs.Counter
	shadowDrops  *obs.Counter
	shadowFlips  *obs.Counter
	shadowDelta  *obs.Histogram
	shards       []*shardMetrics
}

// shardMetrics is one shard's pre-registered handles; nil is a no-op
// like its parent.
type shardMetrics struct {
	queue    *obs.Gauge
	state    *obs.Gauge
	breaker  *obs.Gauge
	restarts *obs.Counter
	stalls   *obs.Counter
	panics   *obs.Counter
	redisp   *obs.Counter
}

// batchBuckets is the batch-size bucket layout: 1 to 5000 documents in
// 1-2-5 steps.
func batchBuckets() []int64 {
	var out []int64
	for _, scale := range []int64{1, 10, 100, 1000} {
		out = append(out, scale, 2*scale, 5*scale)
	}
	return out
}

// deltaBuckets is the shadow score-delta layout: 1e-6 to 1.0 (score
// units are [0,1], recorded in micros) in 1-2-5 steps.
func deltaBuckets() []int64 {
	var out []int64
	for _, scale := range []int64{1, 10, 100, 1000, 10000, 100000} {
		out = append(out, scale, 2*scale, 5*scale)
	}
	return append(out, 1000000)
}

func newServerMetrics(reg *obs.Registry, shards int) *serverMetrics {
	if reg == nil {
		return nil
	}
	m := &serverMetrics{
		reg:          reg,
		requests:     make(map[string]map[int]*obs.Counter, len(metricRoutes)),
		latency:      make(map[string]*obs.Histogram, len(metricRoutes)),
		docs:         make(map[resilience.Status]*obs.Counter, 3),
		shed:         reg.NewCounter("serve_shed_total", "Requests shed with 429 under overload"),
		batch:        reg.NewHistogram("serve_batch_docs", "Documents per batch request", batchBuckets()),
		queue:        reg.NewGauge("serve_queue_depth", "Admitted documents not yet scored, all shards"),
		inflight:     reg.NewGauge("serve_inflight_requests", "Admitted score requests being served"),
		draining:     reg.NewGauge("serve_draining", "1 while Shutdown is draining the server"),
		redisp:       reg.NewCounter("serve_redispatch_total", "Documents re-homed off a dead shard generation"),
		redispFailed: reg.NewCounter("serve_redispatch_failed_total", "Documents answered 503 after losing their shard"),
		generation:   reg.NewGauge("serve_model_generation", "Active model generation new admissions score with"),
		swaps:        reg.NewCounter("serve_model_swaps_total", "Completed model hot-swaps"),
		swapLatency:  reg.NewHistogram("serve_swap_latency_ns", "Fleet rotation wall time per hot-swap", obs.DurationBuckets()),
		feedbackC:    reg.NewCounter("serve_feedback_total", "Accepted operator feedback items"),
		shadowDocs:   reg.NewCounter("serve_shadow_docs_total", "Documents shadow-scored by a candidate model"),
		shadowDrops:  reg.NewCounter("serve_shadow_dropped_total", "Sampled documents dropped because the shadow queue was full"),
		shadowFlips:  reg.NewCounter("serve_shadow_label_flips_total", "Active/candidate label disagreements during shadow scoring"),
		shadowDelta:  reg.NewHistogram("serve_shadow_score_delta_micros", "Absolute active-candidate score delta in 1e-6 units", deltaBuckets()),
	}
	for i := 0; i < shards; i++ {
		l := obs.L("shard", strconv.Itoa(i))
		m.shards = append(m.shards, &shardMetrics{
			queue:    reg.NewGauge("serve_shard_queue_depth", "Admitted documents not yet scored on this shard", l),
			state:    reg.NewGauge("serve_shard_state", "Shard admission state: 0 starting, 1 running, 2 down", l),
			breaker:  reg.NewGauge("serve_shard_breaker_state", "Shard circuit breaker: 0 closed, 1 half-open, 2 open", l),
			restarts: reg.NewCounter("serve_shard_restarts_total", "Failed shard generations (each restarted)", l),
			stalls:   reg.NewCounter("serve_shard_stalls_total", "Shard generations killed by the heartbeat watchdog", l),
			panics:   reg.NewCounter("serve_shard_panics_total", "Shard generations killed by a captured panic", l),
			redisp:   reg.NewCounter("serve_shard_redispatch_total", "Documents moved off this shard's dead generations", l),
		})
	}
	for _, route := range metricRoutes {
		byCode := make(map[int]*obs.Counter, len(metricCodes))
		for _, code := range metricCodes {
			byCode[code] = m.requestCounter(route, code)
		}
		m.requests[route] = byCode
		m.latency[route] = reg.NewHistogram("serve_request_latency_ns",
			"Request wall time by route", obs.DurationBuckets(), obs.L("route", route))
	}
	for _, st := range []resilience.Status{resilience.StatusOK, resilience.StatusDegraded, resilience.StatusQuarantined} {
		m.docs[st] = reg.NewCounter("serve_docs_total",
			"Documents scored through the service, by outcome", obs.L("status", st.String()))
	}
	return m
}

func (m *serverMetrics) requestCounter(route string, code int) *obs.Counter {
	return m.reg.NewCounter("serve_requests_total", "HTTP requests by route and status code",
		obs.L("route", route), obs.L("code", strconv.Itoa(code)))
}

func (m *serverMetrics) observeRequest(route string, code int, d time.Duration) {
	if m == nil {
		return
	}
	if c := m.requests[route][code]; c != nil {
		c.Inc()
	} else {
		m.requestCounter(route, code).Inc()
	}
	if h := m.latency[route]; h != nil {
		h.Observe(d.Nanoseconds())
	}
}

func (m *serverMetrics) shedRequest() {
	if m != nil {
		m.shed.Inc()
	}
}

func (m *serverMetrics) docScored(st resilience.Status) {
	if m == nil {
		return
	}
	if c := m.docs[st]; c != nil {
		c.Inc()
	}
}

func (m *serverMetrics) observeBatch(n int) {
	if m != nil {
		m.batch.Observe(int64(n))
	}
}

func (m *serverMetrics) setQueue(n int) {
	if m != nil {
		m.queue.Set(float64(n))
	}
}

func (m *serverMetrics) setInFlight(n int) {
	if m != nil {
		m.inflight.Set(float64(n))
	}
}

func (m *serverMetrics) setDraining(on bool) {
	if m == nil {
		return
	}
	if on {
		m.draining.Set(1)
	} else {
		m.draining.Set(0)
	}
}

// forShard returns shard id's handles; nil when no registry is wired
// or id is out of range, which every shardMetrics method tolerates.
func (m *serverMetrics) forShard(id int) *shardMetrics {
	if m == nil || id < 0 || id >= len(m.shards) {
		return nil
	}
	return m.shards[id]
}

func (m *serverMetrics) redispatches(n int) {
	if m != nil {
		m.redisp.Add(uint64(n))
	}
}

func (m *serverMetrics) redispatchFailed() {
	if m != nil {
		m.redispFailed.Inc()
	}
}

// setGeneration publishes the active model generation.
func (m *serverMetrics) setGeneration(gen uint64) {
	if m != nil {
		m.generation.Set(float64(gen))
	}
}

// swapDone accounts one completed fleet-wide hot-swap.
func (m *serverMetrics) swapDone(gen uint64, d time.Duration) {
	if m == nil {
		return
	}
	m.generation.Set(float64(gen))
	m.swaps.Inc()
	m.swapLatency.Observe(d.Nanoseconds())
}

// feedback accounts accepted feedback items.
func (m *serverMetrics) feedback(n int) {
	if m != nil {
		m.feedbackC.Add(uint64(n))
	}
}

// shadowScored accounts one shadow comparison: the absolute score
// delta (in 1e-6 units) and whether the candidate flipped the label.
func (m *serverMetrics) shadowScored(deltaMicros int64, flipped bool) {
	if m == nil {
		return
	}
	m.shadowDocs.Inc()
	m.shadowDelta.Observe(deltaMicros)
	if flipped {
		m.shadowFlips.Inc()
	}
}

// shadowDropped accounts a sampled document the shadow queue refused.
func (m *serverMetrics) shadowDropped() {
	if m != nil {
		m.shadowDrops.Inc()
	}
}

func (sm *shardMetrics) setQueue(n int) {
	if sm != nil {
		sm.queue.Set(float64(n))
	}
}

func (sm *shardMetrics) setState(st shardState) {
	if sm != nil {
		sm.state.Set(float64(st))
	}
}

func (sm *shardMetrics) setBreaker(st resilience.BreakerState) {
	if sm != nil {
		sm.breaker.Set(float64(st))
	}
}

// generationFailed accounts one failed generation by cause.
func (sm *shardMetrics) generationFailed(err error) {
	if sm == nil {
		return
	}
	sm.restarts.Inc()
	if errors.Is(err, resilience.ErrStalled) {
		sm.stalls.Inc()
	}
	var pe *resilience.PanicError
	if errors.As(err, &pe) {
		sm.panics.Inc()
	}
}

func (sm *shardMetrics) redispatched(n int) {
	if sm != nil {
		sm.redisp.Add(uint64(n))
	}
}
