package serve

// Shadow scoring: a candidate model scores a deterministic sample of
// live traffic in parallel with the active model, without touching the
// serving path. Shards offer successfully scored documents (off their
// locks) to a bounded queue; a background worker re-scores them on the
// candidate's own backend stream and accounts the divergence — score
// deltas and label flips — that the promotion gates read. Sampling is
// a hash of the document text, so the same traffic always shadows the
// same documents regardless of shard routing or timing, and overflow
// is dropped (and counted), never blocking a shard collector.

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"harassrepro/internal/core"
	"harassrepro/internal/resilience"
)

// shadowQueueDepth bounds documents sampled but not yet re-scored by
// the candidate; overflow increments serve_shadow_dropped_total.
const shadowQueueDepth = 256

// ShadowStats is the divergence ledger a shadow run has accumulated,
// read by the promotion gates.
type ShadowStats struct {
	// Generation is the candidate model's generation.
	Generation uint64 `json:"generation"`
	// Docs is how many documents the candidate has re-scored.
	Docs uint64 `json:"docs"`
	// Dropped is how many sampled documents overflowed the queue.
	Dropped uint64 `json:"dropped"`
	// LabelFlips is how many re-scored documents changed decision on
	// either task (active vs candidate, each under its own thresholds).
	LabelFlips uint64 `json:"label_flips"`
	// MeanDelta and MaxDelta summarise the per-document divergence
	// (the larger of the CTH and dox absolute score deltas).
	MeanDelta float64 `json:"mean_delta"`
	MaxDelta  float64 `json:"max_delta"`
}

// shadowDoc pairs one primary-scored document with the scores and
// generation the active model produced for it.
type shadowDoc struct {
	doc      core.StreamDoc
	cth, dox float64
	gen      uint64
}

// shadowState is one running shadow comparison.
type shadowState struct {
	srv      *Server
	model    *Model
	permille uint64 // sample when hash(text) % 1000 < permille
	ch       chan shadowDoc
	cancel   context.CancelFunc
	done     chan struct{}

	mu       sync.Mutex
	stats    ShadowStats
	sumDelta float64
}

// SetShadow starts shadow-scoring a deterministic sample of live
// traffic on the candidate model m, replacing any previous shadow run.
// rate is the sampled fraction of successfully scored documents,
// clamped to [0,1].
func (s *Server) SetShadow(m *Model, rate float64) error {
	if m == nil || m.Backend == nil {
		return fmt.Errorf("serve: shadow: nil model")
	}
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	ctx, cancel := context.WithCancel(s.rootCtx)
	st := &shadowState{
		srv:      s,
		model:    m,
		permille: uint64(rate * 1000),
		ch:       make(chan shadowDoc, shadowQueueDepth),
		cancel:   cancel,
		done:     make(chan struct{}),
		stats:    ShadowStats{Generation: m.Generation},
	}
	go st.run(ctx)
	if old := s.shadow.Swap(st); old != nil {
		old.stop()
	}
	return nil
}

// ClearShadow stops any running shadow comparison.
func (s *Server) ClearShadow() {
	if old := s.shadow.Swap(nil); old != nil {
		old.stop()
	}
}

// ShadowStats snapshots the running shadow comparison; ok=false means
// no shadow is active.
func (s *Server) ShadowStats() (ShadowStats, bool) {
	st := s.shadow.Load()
	if st == nil {
		return ShadowStats{}, false
	}
	return st.snapshot(), true
}

func (st *shadowState) stop() {
	st.cancel()
	<-st.done
}

func (st *shadowState) snapshot() ShadowStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := st.stats
	if out.Docs > 0 {
		out.MeanDelta = st.sumDelta / float64(out.Docs)
	}
	return out
}

// offer samples one successfully scored document into the shadow
// queue. Called by shard collectors off their locks; never blocks —
// a full queue drops the document and counts it.
func (st *shadowState) offer(doc core.StreamDoc, item core.StreamDoc, gen uint64) {
	if st.permille == 0 || textHash(item.Text)%1000 >= st.permille {
		return
	}
	select {
	case st.ch <- shadowDoc{doc: doc, cth: item.CTH, dox: item.Dox, gen: gen}:
	default:
		st.mu.Lock()
		st.stats.Dropped++
		st.mu.Unlock()
		st.srv.m.shadowDropped()
	}
}

// textHash is FNV-1a over the document text: cheap, deterministic, and
// independent of shard routing.
func textHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// run owns the candidate's scoring stream: a feeder moves sampled
// documents onto the stream under synthetic IDs, and this loop pairs
// every candidate result with the primary scores recorded at offer
// time, accounting the divergence.
func (st *shadowState) run(ctx context.Context) {
	defer close(st.done)
	in := make(chan core.StreamDoc, shadowQueueDepth)
	out := st.model.Backend.ScoreStream(ctx, in, core.StreamOptions{
		Workers: 1,
		Seed:    st.model.Seed,
	})

	pending := make(map[string]shadowDoc, shadowQueueDepth)
	var pmu sync.Mutex
	go func() {
		defer close(in)
		n := 0
		for {
			select {
			case <-ctx.Done():
				return
			case sd := <-st.ch:
				n++
				id := "shadow-" + strconv.Itoa(n)
				d := sd.doc
				d.ID = id
				pmu.Lock()
				pending[id] = sd
				pmu.Unlock()
				select {
				case in <- d:
				case <-ctx.Done():
					return
				}
			}
		}
	}()

	active := st.srv.model.Load()
	for res := range out {
		pmu.Lock()
		sd, ok := pending[res.Item.ID]
		delete(pending, res.Item.ID)
		pmu.Unlock()
		if !ok || res.Status == resilience.StatusQuarantined {
			continue
		}
		st.record(active, sd, res.Item)
	}
}

// record accounts one active/candidate comparison.
func (st *shadowState) record(active *Model, sd shadowDoc, cand core.StreamDoc) {
	delta := absf(sd.cth - cand.CTH)
	if d := absf(sd.dox - cand.Dox); d > delta {
		delta = d
	}
	flipped := decide(active, sd.doc.Platform, sd.cth, sd.dox) !=
		decide(st.model, sd.doc.Platform, cand.CTH, cand.Dox)

	st.mu.Lock()
	st.stats.Docs++
	if flipped {
		st.stats.LabelFlips++
	}
	st.sumDelta += delta
	if delta > st.stats.MaxDelta {
		st.stats.MaxDelta = delta
	}
	st.mu.Unlock()
	st.srv.m.shadowScored(int64(delta*1e6+0.5), flipped)
}

// decide applies a model's per-platform thresholds (default 0.5) to a
// score pair, yielding the (cth, dox) decision bits packed as an int.
func decide(m *Model, platform string, cth, dox float64) int {
	tc, td := 0.5, 0.5
	if m != nil && m.Thresholds != nil {
		if v := m.Thresholds.CTHThreshold(platform); v > 0 {
			tc = v
		}
		if v := m.Thresholds.DoxThreshold(platform); v > 0 {
			td = v
		}
	}
	out := 0
	if cth >= tc {
		out |= 1
	}
	if dox >= td {
		out |= 2
	}
	return out
}

// absf is math.Abs without the import.
func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
