package serve

// Chaos certification for the sharded serving layer, run under -race by
// check.sh: under seeded shard panics and stalls, every admitted
// request gets exactly one terminal answer — scored identically to a
// fault-free run, or a terminal 503 — never dropped and never scored
// twice; the faulted shard restarts and its breaker re-closes once the
// faults stop.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"harassrepro/internal/core"
	"harassrepro/internal/obs"
	"harassrepro/internal/resilience"
	"harassrepro/internal/resilience/chaos"
)

// goldenScore is the deterministic text-derived score the chaos tests
// compare against: a faulted run must produce exactly these values for
// every OK document, whichever shard (or shards) handled it.
func goldenScore(text string) (cth, dox float64) {
	h := 0
	for _, r := range text {
		h = h*31 + int(r)
	}
	if h < 0 {
		h = -h
	}
	return float64(h%1000) / 1000, float64(h%97) / 97
}

// goldenBackend scores every document as a pure function of its text on
// a real resilience runner, so score equality across redispatch is a
// meaningful assertion.
type goldenBackend struct {
	delay time.Duration
}

func (g *goldenBackend) ScoreStream(ctx context.Context, in <-chan core.StreamDoc, opts core.StreamOptions) <-chan resilience.Result[core.StreamDoc] {
	stage := resilience.Stage[core.StreamDoc]{
		Name: "golden-score",
		Fn: func(ctx context.Context, _ int, sd *core.StreamDoc) error {
			if g.delay > 0 {
				select {
				case <-time.After(g.delay):
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			sd.CTH, sd.Dox = goldenScore(sd.Text)
			return nil
		},
	}
	return resilience.NewRunner(resilience.Config[core.StreamDoc]{
		Workers: opts.Workers,
		Seed:    opts.Seed,
		Metrics: opts.Metrics,
	}, stage).Process(ctx, in)
}

// injectFunc adapts a function to the FaultInjector interface.
type injectFunc func(ctx context.Context, shard, gen, n int) error

func (f injectFunc) BeforeDeliver(ctx context.Context, shard, gen, n int) error {
	return f(ctx, shard, gen, n)
}

// shardByID finds one shard's stats.
func shardByID(t *testing.T, st Stats, id int) ShardStats {
	t.Helper()
	for _, ss := range st.Shards {
		if ss.ID == id {
			return ss
		}
	}
	t.Fatalf("no shard %d in %+v", id, st.Shards)
	return ShardStats{}
}

func TestChaosCertificationNoLossNoDoubleScore(t *testing.T) {
	before := runtime.NumGoroutine()

	reg := obs.NewRegistry()
	plan := &chaos.ServePlan{
		Seed:      7,
		PanicRate: 0.08,
		Targets:   map[int]bool{0: true},
		MaxFaults: 40,
	}
	s := New(Config{
		Backend:            &goldenBackend{},
		Shards:             3,
		Workers:            3,
		QueueDepth:         96,
		BreakerThreshold:   2,
		BreakerOpenTimeout: 50 * time.Millisecond,
		StallTimeout:       500 * time.Millisecond,
		RestartBackoff:     resilience.RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		RequestTimeout:     10 * time.Second,
		Faults:             plan,
		Metrics:            reg,
	})
	ts := newHTTPFront(t, s)

	const clients, perClient = 8, 40
	var (
		sent      atomic.Int64
		okCount   atomic.Int64
		lostCount atomic.Int64
		mu        sync.Mutex
		bad       []string
	)
	post := func(client, n int) {
		text := fmt.Sprintf("chaos doc %d-%d", client, n)
		sent.Add(1)
		resp, err := ts.Client().Post(ts.URL+"/v1/score", "application/json",
			strings.NewReader(fmt.Sprintf(`{"id":"c%d-%d","text":%q}`, client, n, text)))
		if err != nil {
			mu.Lock()
			bad = append(bad, fmt.Sprintf("req %d-%d: transport error %v", client, n, err))
			mu.Unlock()
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			var res ScoreResult
			if err := json.Unmarshal(body, &res); err != nil {
				t.Errorf("bad body %s: %v", body, err)
				return
			}
			wantCTH, wantDox := goldenScore(text)
			if res.CTH != wantCTH || res.Dox != wantDox {
				mu.Lock()
				bad = append(bad, fmt.Sprintf("req %d-%d: scores (%v,%v) != golden (%v,%v)",
					client, n, res.CTH, res.Dox, wantCTH, wantDox))
				mu.Unlock()
				return
			}
			okCount.Add(1)
		case http.StatusServiceUnavailable:
			// Terminal shard-lost (redispatch exhausted) or no shard
			// available: allowed, but must carry Retry-After.
			if resp.Header.Get("Retry-After") == "" {
				mu.Lock()
				bad = append(bad, fmt.Sprintf("req %d-%d: 503 without Retry-After", client, n))
				mu.Unlock()
				return
			}
			lostCount.Add(1)
		default:
			mu.Lock()
			bad = append(bad, fmt.Sprintf("req %d-%d: unexpected status %d body %s", client, n, resp.StatusCode, body))
			mu.Unlock()
		}
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			for n := 0; n < perClient; n++ {
				post(client, n)
			}
		}(c)
	}
	wg.Wait()
	for _, b := range bad {
		t.Error(b)
	}

	// Exactly one terminal answer per admitted request: nothing lost.
	if got := okCount.Load() + lostCount.Load(); got != sent.Load() {
		t.Errorf("answers = %d (ok %d + lost %d), want %d", got, okCount.Load(), lostCount.Load(), sent.Load())
	}

	// The faulted shard actually suffered: generations died and their
	// in-flight documents were moved.
	sh0 := shardByID(t, s.Stats(), 0)
	if plan.Disrupted() == 0 || sh0.Restarts == 0 {
		t.Errorf("chaos did not bite: %d faults injected, shard 0 restarts = %d", plan.Disrupted(), sh0.Restarts)
	}
	if sh0.Panics == 0 {
		t.Errorf("shard 0 panics = 0, want > 0 (stats %+v)", sh0)
	}

	// Self-healing: with the fault budget exhausted, trickle traffic
	// until every shard is running with a closed breaker again.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.Stats()
		if st.HealthyShards == len(st.Shards) && shardByID(t, st, 0).Breaker == "closed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard fleet never re-healed: %+v", st.Shards)
		}
		post(99, int(sent.Load()))
		time.Sleep(5 * time.Millisecond)
	}

	// Exactly-once at the metrics layer: every admitted document was
	// answered exactly once, so terminal doc answers == admitted docs.
	// (A double delivery would overcount; a dropped one would hang a
	// request above.)
	answered := okCount.Load() + lostCount.Load()
	var docsTotal float64
	for _, m := range reg.Snapshot().Metrics {
		if m.Name == "serve_docs_total" && m.Value != nil {
			docsTotal += float64(*m.Value)
		}
	}
	if int64(docsTotal) != answered {
		t.Errorf("serve_docs_total = %v, want %d (exactly one terminal answer per doc)", docsTotal, answered)
	}

	// Redispatch accounting is visible: moved + failed covers every doc
	// swept off dead generations.
	snap := reg.Snapshot()
	moved := snap.CounterValue("serve_redispatch_total")
	failed := snap.CounterValue("serve_redispatch_failed_total")
	if moved == 0 && lostCount.Load() == 0 {
		t.Error("no documents redispatched and none failed: panics never hit in-flight work?")
	}
	if int64(failed) != lostCount.Load() {
		t.Errorf("serve_redispatch_failed_total = %v, want %d (one per 503 shard-lost answer)", failed, lostCount.Load())
	}

	// Queue accounting converged: aggregate gauge, per-shard gauges and
	// Stats agree at quiescence (satellite: 429 admission and metrics
	// cannot disagree).
	st := s.Stats()
	if st.Queued != 0 || st.InFlight != 0 {
		t.Errorf("post-load stats = %+v, want drained", st)
	}
	var perShard float64
	for _, m := range snap.Metrics {
		if m.Name == "serve_shard_queue_depth" && m.Value != nil {
			perShard += float64(*m.Value)
		}
	}
	if agg := snap.CounterValue("serve_queue_depth"); agg != 0 || perShard != 0 {
		t.Errorf("queue gauges at quiescence: aggregate %v, per-shard sum %v, want 0", agg, perShard)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	ts.Close()
	waitForGoroutines(t, before)
}

func TestChaosStallIsKilledAndRedispatched(t *testing.T) {
	var stalled atomic.Int64
	inj := injectFunc(func(ctx context.Context, shard, gen, n int) error {
		// First delivery on shard 0 wedges until the watchdog kills the
		// generation; everything else flows.
		if shard == 0 && gen == 0 && n == 0 && stalled.Add(1) == 1 {
			<-ctx.Done()
			return fmt.Errorf("test stall: %w", ctx.Err())
		}
		return nil
	})
	s := New(Config{
		Backend:        &goldenBackend{},
		Shards:         2,
		Workers:        2,
		StallTimeout:   50 * time.Millisecond,
		RestartBackoff: resilience.RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
		RequestTimeout: 10 * time.Second,
		Faults:         inj,
	})
	ts := newHTTPFront(t, s)
	defer shutdownServer(t, s, ts)

	// Keep posting until the stall has fired; the stalled document must
	// still be answered 200 off the healthy shard.
	deadline := time.Now().Add(5 * time.Second)
	hit := false
	for i := 0; !hit; i++ {
		text := fmt.Sprintf("stall doc %d", i)
		code, body, _ := postJSON(t, ts.Client(), ts.URL+"/v1/score", fmt.Sprintf(`{"text":%q}`, text))
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, code, body)
		}
		var res ScoreResult
		if err := json.Unmarshal([]byte(body), &res); err != nil {
			t.Fatal(err)
		}
		if c, d := goldenScore(text); res.CTH != c || res.Dox != d {
			t.Fatalf("request %d: scores %+v, want (%v,%v)", i, res, c, d)
		}
		hit = stalled.Load() > 0 && shardByID(t, s.Stats(), 0).Stalls > 0
		if time.Now().After(deadline) {
			t.Fatalf("stall never detected: injected=%d stats=%+v", stalled.Load(), s.Stats().Shards)
		}
	}
	sh0 := shardByID(t, s.Stats(), 0)
	if sh0.Stalls == 0 || sh0.Restarts == 0 {
		t.Errorf("shard 0 = %+v, want stall-kill and restart recorded", sh0)
	}
}

func TestRedispatchExhaustedAnswers503WithRetryAfter(t *testing.T) {
	// Single shard: a panic mid-flight leaves no healthy shard to take
	// the swept document, so the answer is the terminal shard-lost 503.
	var fired atomic.Int64
	inj := injectFunc(func(_ context.Context, shard, gen, n int) error {
		if fired.Add(1) == 1 {
			panic("test: shard explosion with nowhere to go")
		}
		return nil
	})
	reg := obs.NewRegistry()
	s := New(Config{
		Backend:        &goldenBackend{},
		Shards:         1,
		Workers:        1,
		RestartBackoff: resilience.RetryPolicy{BaseDelay: 20 * time.Millisecond, MaxDelay: 40 * time.Millisecond},
		RequestTimeout: 5 * time.Second,
		Faults:         inj,
		Metrics:        reg,
	})
	ts := newHTTPFront(t, s)
	defer shutdownServer(t, s, ts)

	code, body, hdr := postJSON(t, ts.Client(), ts.URL+"/v1/score", `{"text":"doomed document"}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d body %s, want 503", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("terminal shard-lost 503 lacks Retry-After")
	}
	if !strings.Contains(body, "shard lost") {
		t.Errorf("body = %s, want shard-lost explanation", body)
	}
	if got := reg.Snapshot().CounterValue("serve_redispatch_failed_total"); got != 1 {
		t.Errorf("serve_redispatch_failed_total = %v, want 1", got)
	}
	// The shard heals and the next request scores normally.
	waitFor(t, 5*time.Second, func() bool { return shardByID(t, s.Stats(), 0).State == "running" })
	code, body, _ = postJSON(t, ts.Client(), ts.URL+"/v1/score", `{"text":"healed"}`)
	if code != http.StatusOK {
		t.Fatalf("post-heal status = %d body %s", code, body)
	}
}

func TestReadyzQuorumDegraded(t *testing.T) {
	// Two shards, shard 0 panicking on every delivery with a
	// one-failure breaker: once its breaker opens, only 1/2 shards are
	// healthy — no quorum — and readyz must report 503 degraded while
	// score traffic still succeeds on the survivor.
	inj := injectFunc(func(_ context.Context, shard, _, _ int) error {
		if shard == 0 {
			panic("test: shard 0 always dies")
		}
		return nil
	})
	s := New(Config{
		Backend:            &goldenBackend{},
		Shards:             2,
		Workers:            2,
		BreakerThreshold:   1,
		BreakerOpenTimeout: time.Hour, // stays open for the whole test
		RestartBackoff:     resilience.RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
		RequestTimeout:     10 * time.Second,
		Faults:             inj,
	})
	ts := newHTTPFront(t, s)
	defer shutdownServer(t, s, ts)

	// Drive traffic until shard 0's breaker opens. Every request must
	// still get a 200: the survivor picks up redispatched documents.
	deadline := time.Now().Add(10 * time.Second)
	for shardByID(t, s.Stats(), 0).Breaker != "open" {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened: %+v", s.Stats().Shards)
		}
		code, body, _ := postJSON(t, ts.Client(), ts.URL+"/v1/score", `{"text":"quorum probe"}`)
		if code != http.StatusOK {
			t.Fatalf("status = %d body %s, want 200 via healthy shard", code, body)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d (%s), want 503 without quorum", resp.StatusCode, b)
	}
	if !strings.Contains(string(b), "degraded") {
		t.Errorf("/readyz body = %q, want degraded detail", b)
	}
	// Liveness is unaffected and scoring still works.
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", resp.StatusCode)
	}
	code, body, _ := postJSON(t, ts.Client(), ts.URL+"/v1/score", `{"text":"still serving"}`)
	if code != http.StatusOK {
		t.Errorf("degraded-mode score = %d body %s, want 200", code, body)
	}
}

func TestStatsQueueAccountingMatchesAdmission(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{
		Backend:        &goldenBackend{delay: 50 * time.Millisecond},
		Shards:         2,
		Workers:        2,
		QueueDepth:     8,
		MaxInFlight:    32,
		RequestTimeout: 10 * time.Second,
		Metrics:        reg,
	})
	ts := newHTTPFront(t, s)
	defer shutdownServer(t, s, ts)

	st := s.Stats()
	if st.QueueCapacity != 8 || len(st.Shards) != 2 {
		t.Fatalf("stats = %+v, want capacity 8 over 2 shards", st)
	}

	done := make(chan int, 6)
	for i := 0; i < 6; i++ {
		go func(i int) {
			code, _, _ := postJSON(t, ts.Client(), ts.URL+"/v1/score", fmt.Sprintf(`{"text":"slow %d"}`, i))
			done <- code
		}(i)
	}
	// While work is queued, the aggregate is exactly the per-shard sum.
	waitFor(t, 2*time.Second, func() bool { return s.Stats().Queued > 0 })
	st = s.Stats()
	sum := 0
	for _, ss := range st.Shards {
		sum += ss.Queued
		if ss.Queued > ss.Depth {
			t.Errorf("shard %d queued %d over depth %d", ss.ID, ss.Queued, ss.Depth)
		}
	}
	if st.Queued != sum {
		t.Errorf("Stats.Queued = %d, per-shard sum = %d: views disagree", st.Queued, sum)
	}
	for i := 0; i < 6; i++ {
		if code := <-done; code != http.StatusOK {
			t.Errorf("request %d = %d, want 200", i, code)
		}
	}
	waitFor(t, 2*time.Second, func() bool { return s.Stats().Queued == 0 })
	// At quiescence every view is zero, including both gauge layers.
	snap := reg.Snapshot()
	var perShard float64
	for _, m := range snap.Metrics {
		if m.Name == "serve_shard_queue_depth" && m.Value != nil {
			perShard += float64(*m.Value)
		}
	}
	if agg := snap.CounterValue("serve_queue_depth"); agg != 0 || perShard != 0 {
		t.Errorf("gauges at quiescence: aggregate %v, per-shard sum %v", agg, perShard)
	}
}

func TestParseServePlanRoundTrip(t *testing.T) {
	p, err := chaos.ParseServePlan("seed=7,panic=0.02,stall=0.004,spike=0.05,spike-ms=20,shards=0+2,max-faults=40")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.PanicRate != 0.02 || p.StallRate != 0.004 || p.SpikeRate != 0.05 ||
		p.Spike != 20*time.Millisecond || p.MaxFaults != 40 {
		t.Fatalf("plan = %+v", p)
	}
	if !p.Targets[0] || p.Targets[1] || !p.Targets[2] {
		t.Fatalf("targets = %+v, want shards 0 and 2", p.Targets)
	}
	if p2, err := chaos.ParseServePlan("  "); err != nil || p2 != nil {
		t.Fatalf("empty spec = (%v, %v), want (nil, nil)", p2, err)
	}
	for _, bad := range []string{"panic=2", "seed=x", "spike-ms=-1", "shards=a", "nope=1", "panic"} {
		if _, err := chaos.ParseServePlan(bad); err == nil {
			t.Errorf("ParseServePlan(%q) accepted, want error", bad)
		}
	}
}

// newHTTPFront wraps a server in an httptest front end without
// registering cleanup (tests that assert goroutine counts manage
// shutdown themselves).
func newHTTPFront(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	return httptest.NewServer(s.Handler())
}

// shutdownServer is the common deferred teardown.
func shutdownServer(t *testing.T, s *Server, ts *httptest.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown = %v", err)
	}
	ts.Close()
}

// waitForGoroutines asserts the goroutine count settles back near the
// baseline: no leaked shard, supervisor or handler goroutines.
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: before=%d after=%d\n%s", before, now, buf[:n])
		}
		time.Sleep(25 * time.Millisecond)
	}
}
