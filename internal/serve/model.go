package serve

// Atomic model hot-swap. The protocol keeps the no-loss and no-torn-
// read invariants while the fleet changes models under traffic:
//
//  1. SwapModel publishes the new *Model handle. From this instant
//     every shard session that (re)opens — including one restarted by
//     the supervisor mid-swap — scores with the new model.
//  2. Shards rotate one at a time: the session is asked to rotate, it
//     stops admitting, waits for in-flight queue sends to land, closes
//     its input so the old backend finishes everything it was handed,
//     delivers those results (still stamped with the old generation),
//     and reopens on the new model. N-1 shards keep serving while one
//     rotates, so a swap is zero-downtime.
//  3. Rotation requests are idempotent per session and re-signalled
//     until the shard converges, so a session killed by chaos between
//     the request and the handover still lands on the new model: its
//     replacement reads the already-published handle.
//
// A document therefore finishes on the generation whose backend
// admitted it — or, if that generation died unscored, is redispatched
// and scored wholly by the receiving shard's generation. No response
// ever mixes generations.

import (
	"context"
	"fmt"
	"time"
)

// ActiveModel returns the handle new admissions score through.
func (s *Server) ActiveModel() *Model {
	return s.model.Load()
}

// SwapModel atomically replaces the serving model and rotates every
// shard onto it, returning once the whole fleet scores new admissions
// with m (bounded by ctx). Swapping to the already-active generation
// is a no-op. Concurrent swaps serialise; each applies exactly once.
func (s *Server) SwapModel(ctx context.Context, m *Model) error {
	if m == nil || m.Backend == nil {
		return fmt.Errorf("serve: swap: nil model")
	}
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if old := s.model.Load(); old != nil && old.Generation == m.Generation {
		return nil
	}
	if s.stopped() {
		return fmt.Errorf("serve: swap: server stopped")
	}
	start := time.Now()
	s.model.Store(m)
	for _, sh := range s.shards {
		if err := sh.rotateTo(ctx, m.Generation); err != nil {
			return err
		}
	}
	s.m.swapDone(m.Generation, time.Since(start))
	return nil
}

// rotateTo drives one shard onto the target generation: request the
// current session to rotate and poll until a session running the
// target model has opened. The request is re-issued every poll so a
// session that died and restarted mid-rotation (chaos) is converged
// too — its replacement already reads the new handle.
func (sh *shard) rotateTo(ctx context.Context, target uint64) error {
	for {
		if sh.atGeneration(target) {
			return nil
		}
		sh.requestRotate(target)
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: swap: shard %d did not reach generation %d: %w", sh.id, target, ctx.Err())
		case <-sh.srv.supDone:
			return fmt.Errorf("serve: swap: server stopped before shard %d rotated", sh.id)
		case <-time.After(time.Millisecond):
		}
	}
}

// atGeneration reports whether the shard's current session was opened
// with the target model generation.
func (sh *shard) atGeneration(target uint64) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.modelGen == target
}

// requestRotate asks the current session to hand over, at most once
// per session. A session already on the target, or a shard between
// sessions (rotate == nil), needs nothing: its next session reads the
// published handle.
func (sh *shard) requestRotate(target uint64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.modelGen == target || sh.rotate == nil || sh.rotated {
		return
	}
	sh.rotated = true
	close(sh.rotate)
}
