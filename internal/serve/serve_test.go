package serve

// httptest-driven tests over a fake backend with controllable latency:
// the fake runs on the real resilience.Runner, so admission, drain and
// result routing are exercised against the same machinery production
// uses, without paying for classifier training. The overload test
// asserts no goroutine leak; the drain test (run under -race by
// check.sh) asserts every accepted request completes during Shutdown.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"harassrepro/internal/core"
	"harassrepro/internal/obs"
	"harassrepro/internal/resilience"
)

// fakeBackend scores every document with a fixed latency on a real
// resilience runner.
type fakeBackend struct {
	delay time.Duration
}

func (f *fakeBackend) ScoreStream(ctx context.Context, in <-chan core.StreamDoc, opts core.StreamOptions) <-chan resilience.Result[core.StreamDoc] {
	stage := resilience.Stage[core.StreamDoc]{
		Name: "fake-score",
		Fn: func(ctx context.Context, _ int, sd *core.StreamDoc) error {
			if f.delay > 0 {
				select {
				case <-time.After(f.delay):
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			if strings.Contains(sd.Text, "poison") {
				return fmt.Errorf("poison document")
			}
			sd.CTH, sd.Dox = 0.75, 0.25
			return nil
		},
	}
	return resilience.NewRunner(resilience.Config[core.StreamDoc]{
		Workers: opts.Workers,
		Seed:    opts.Seed,
		Metrics: opts.Metrics,
	}, stage).Process(ctx, in)
}

// newTestServer builds a server over a fake backend and an httptest
// front end. Cleanup shuts both down.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Backend == nil {
		cfg.Backend = &fakeBackend{}
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck // second shutdown in some tests
		ts.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, client *http.Client, url, body string) (int, string, http.Header) {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp.StatusCode, string(b), resp.Header
}

func TestScoreSingleDocument(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Seed: 1})
	code, body, _ := postJSON(t, ts.Client(), ts.URL+"/v1/score", `{"id":"doc-1","text":"hello world"}`)
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, body)
	}
	var res ScoreResult
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if res.ID != "doc-1" || res.Status != "ok" || res.CTH != 0.75 || res.Dox != 0.25 {
		t.Fatalf("result = %+v", res)
	}

	// Missing text is a client error, not a quarantine.
	code, body, _ = postJSON(t, ts.Client(), ts.URL+"/v1/score", `{"text":"  "}`)
	if code != http.StatusBadRequest {
		t.Fatalf("blank text: status = %d, body %s", code, body)
	}
	// A poison document is quarantined in-band.
	code, body, _ = postJSON(t, ts.Client(), ts.URL+"/v1/score", `{"text":"poison pill"}`)
	if code != http.StatusOK {
		t.Fatalf("poison: status = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if res.Status != "quarantined" || res.Error == "" {
		t.Fatalf("poison result = %+v", res)
	}
}

func TestOverloadShedsWith429AndNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	reg := obs.NewRegistry()
	s := New(Config{
		Backend:        &fakeBackend{delay: 30 * time.Millisecond},
		Workers:        2,
		MaxInFlight:    4,
		QueueDepth:     4,
		RequestTimeout: 10 * time.Second,
		Metrics:        reg,
	})
	ts := httptest.NewServer(s.Handler())

	const clients = 64
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		byCode  = map[int]int{}
		noRetry int
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := ts.Client().Post(ts.URL+"/v1/score", "application/json",
				strings.NewReader(`{"text":"load test document"}`))
			if err != nil {
				t.Errorf("request failed: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			mu.Lock()
			byCode[resp.StatusCode]++
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				noRetry++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()

	if byCode[http.StatusOK]+byCode[http.StatusTooManyRequests] != clients {
		t.Fatalf("unexpected status codes: %v", byCode)
	}
	if byCode[http.StatusOK] == 0 {
		t.Error("no request succeeded under overload")
	}
	if byCode[http.StatusTooManyRequests] == 0 {
		t.Errorf("no request was shed (codes %v): admission bound not enforced", byCode)
	}
	if noRetry != 0 {
		t.Errorf("%d of the 429 responses lacked Retry-After", noRetry)
	}

	shed := reg.Snapshot().CounterValue("serve_shed_total")
	if int(shed) != byCode[http.StatusTooManyRequests] {
		t.Errorf("serve_shed_total = %v, want %d", shed, byCode[http.StatusTooManyRequests])
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	ts.Close()

	// Every server goroutine (workers, feeder, collector, HTTP conns)
	// must be gone: allow brief settling plus a small slack for runtime
	// background goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: before=%d after=%d\n%s", before, now, buf[:n])
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func TestGracefulDrainCompletesAcceptedRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Backend:        &fakeBackend{delay: 80 * time.Millisecond},
		Workers:        2,
		MaxInFlight:    16,
		QueueDepth:     16,
		RequestTimeout: 10 * time.Second,
	})

	const accepted = 6
	codes := make(chan int, accepted)
	for i := 0; i < accepted; i++ {
		go func() {
			resp, err := ts.Client().Post(ts.URL+"/v1/score", "application/json",
				strings.NewReader(`{"text":"in flight during drain"}`))
			if err != nil {
				codes <- -1
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	// Wait until every request is admitted, so Shutdown races real
	// in-flight work.
	waitFor(t, time.Second, func() bool { return s.Stats().InFlight == accepted })

	shutErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutErr <- s.Shutdown(ctx)
	}()
	waitFor(t, time.Second, func() bool { return s.Stats().Draining })

	// A request arriving mid-drain is refused with 503 + Retry-After.
	resp, err := ts.Client().Post(ts.URL+"/v1/score", "application/json",
		strings.NewReader(`{"text":"late arrival"}`))
	if err != nil {
		t.Fatalf("mid-drain request: %v", err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("mid-drain status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("mid-drain 503 lacks Retry-After")
	}

	// Every accepted request completes with a real scored response.
	for i := 0; i < accepted; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Errorf("accepted request %d finished with %d, want 200", i, code)
		}
	}
	if err := <-shutErr; err != nil {
		t.Errorf("Shutdown = %v, want clean drain", err)
	}
	if got := s.Stats(); got.InFlight != 0 || got.Queued != 0 {
		t.Errorf("post-drain stats = %+v", got)
	}
}

func TestBatchLenientJSONLReportsQuarantinedLines(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	body := strings.Join([]string{
		`{"id":"a","text":"first good line"}`,
		`{broken json`,
		`{"id":"b","platform":"gab","text":"second good line"}`,
		``,
		`{"id":"no-text"}`,
		`{"text":"third good line"}`,
	}, "\n")
	resp, err := ts.Client().Post(ts.URL+"/v1/score/batch", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, body %s", resp.StatusCode, b)
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 3 {
		t.Fatalf("results = %+v", br.Results)
	}
	// Input order preserved; the line-6 document got a line-derived ID.
	if br.Results[0].ID != "a" || br.Results[1].ID != "b" || br.Results[2].ID != "jsonl-00000006" {
		t.Errorf("result IDs = %q %q %q", br.Results[0].ID, br.Results[1].ID, br.Results[2].ID)
	}
	for i, r := range br.Results {
		if r.Status != "ok" || r.CTH != 0.75 {
			t.Errorf("result %d = %+v", i, r)
		}
	}
	if len(br.Quarantined) != 2 || br.Quarantined[0].Line != 2 || br.Quarantined[1].Line != 5 {
		t.Fatalf("quarantined = %+v, want lines 2 and 5", br.Quarantined)
	}
	if br.Quarantined[0].Preview == "" || !strings.Contains(br.Quarantined[1].Error, "missing text") {
		t.Errorf("quarantined detail = %+v", br.Quarantined)
	}
	want := BatchSummary{Docs: 3, OK: 3, BadLines: 2}
	if br.Summary != want {
		t.Errorf("summary = %+v, want %+v", br.Summary, want)
	}
}

func TestBatchJSONArray(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	body := `[{"id":"x","text":"one"},{"id":"empty"},{"id":"y","text":"two"}]`
	code, out, _ := postJSON(t, ts.Client(), ts.URL+"/v1/score/batch", body)
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, out)
	}
	var br BatchResponse
	if err := json.Unmarshal([]byte(out), &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 2 || br.Results[0].ID != "x" || br.Results[1].ID != "y" {
		t.Fatalf("results = %+v", br.Results)
	}
	if len(br.Quarantined) != 1 || br.Quarantined[0].Line != 2 {
		t.Fatalf("quarantined = %+v, want array index 2", br.Quarantined)
	}
}

func TestBatchLimits(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, MaxBatchDocs: 2})
	var sb bytes.Buffer
	for i := 0; i < 3; i++ {
		fmt.Fprintf(&sb, "{\"text\":\"doc %d\"}\n", i)
	}
	code, body, _ := postJSON(t, ts.Client(), ts.URL+"/v1/score/batch", sb.String())
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: status = %d, body %s", code, body)
	}
	code, body, _ = postJSON(t, ts.Client(), ts.URL+"/v1/score/batch", "")
	if code != http.StatusBadRequest {
		t.Fatalf("empty batch: status = %d, body %s", code, body)
	}
	// All-bad batch still reports its quarantined lines with 200.
	code, body, _ = postJSON(t, ts.Client(), ts.URL+"/v1/score/batch", "{bad\n")
	if code != http.StatusOK || !strings.Contains(body, "quarantined_lines") {
		t.Fatalf("all-bad batch: status = %d, body %s", code, body)
	}
}

func TestHealthzReadyzAndDrainTransition(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d, want 200", path, resp.StatusCode)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	// Liveness stays green through drain; readiness flips.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-drain /healthz = %d, want 200", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain /readyz = %d, want 503", resp.StatusCode)
	}
	code, _, _ := postJSON(t, ts.Client(), ts.URL+"/v1/score", `{"text":"too late"}`)
	if code != http.StatusServiceUnavailable {
		t.Errorf("post-drain score = %d, want 503", code)
	}
}

func TestRequestDeadlineReturns504(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Backend:        &fakeBackend{delay: 300 * time.Millisecond},
		Workers:        1,
		RequestTimeout: 30 * time.Millisecond,
	})
	code, body, _ := postJSON(t, ts.Client(), ts.URL+"/v1/score", `{"text":"slow"}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, body %s", code, body)
	}
}

func TestMetricsServedOnSameMux(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Workers: 2, Metrics: reg})
	postJSON(t, ts.Client(), ts.URL+"/v1/score", `{"text":"observable"}`)
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		`serve_requests_total{route="score",code="200"} 1`,
		"serve_queue_depth",
		"serve_request_latency_ns",
		"serve_docs_total",
	} {
		if !strings.Contains(string(b), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// waitFor polls cond until true or the deadline elapses.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
