// Package serve is the production scoring service behind cmd/harassd:
// a long-running HTTP surface over the detector's zero-allocation
// scoring hot path. The paper's classifiers are exactly the kind of
// moderation infrastructure platforms call as an online service (the
// Perspective-API deployment model), and this package supplies the
// serving discipline such a deployment needs:
//
//   - request coalescing: every request — single /v1/score call or a
//     thousand-document batch — feeds one shared, long-lived
//     resilience.Runner stream over the detector's pooled scorers, so
//     concurrency is bounded by one worker pool no matter how many
//     clients connect, and per-request work shares the same retry,
//     panic-isolation and dead-letter machinery as offline scoring;
//   - admission control: a bounded in-flight request count and a
//     bounded scoring queue; overload is answered immediately with
//     429 + Retry-After instead of an unbounded goroutine pile-up;
//   - per-request deadlines propagated via context: a caller that
//     gives up stops waiting, and its abandoned documents release
//     their queue slots as they complete;
//   - graceful drain: Shutdown stops admitting, finishes every
//     accepted request, closes the scoring stream, and drains the
//     HTTP listener, all bounded by the caller's context.
//
// The invariant that makes the hot path simple: queue admission
// reserves one slot per document and cap(s.in) == QueueDepth, so at
// most QueueDepth admitted documents exist anywhere between admission
// and collection — a post-admission send on s.in can never block.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"harassrepro/internal/core"
	"harassrepro/internal/obs"
	"harassrepro/internal/obs/obshttp"
	"harassrepro/internal/resilience"
)

// Backend scores a stream of documents. *core.Detector implements it
// with the pooled zero-allocation scorers; tests substitute a fake with
// controllable latency.
type Backend interface {
	ScoreStream(ctx context.Context, in <-chan core.StreamDoc, opts core.StreamOptions) <-chan resilience.Result[core.StreamDoc]
}

// Config configures a Server. The zero value of every limit picks a
// production-safe default.
type Config struct {
	// Backend scores the documents. Required.
	Backend Backend
	// Workers bounds the shared scoring pool (0 = GOMAXPROCS).
	Workers int
	// Seed drives the detector's deterministic span sampling.
	Seed uint64
	// Annotate adds the PII and taxonomy/seed-query stages to every
	// scored document.
	Annotate bool
	// MaxInFlight bounds concurrently admitted score requests; excess
	// requests are shed with 429. Default 256.
	MaxInFlight int
	// QueueDepth bounds documents admitted but not yet scored, across
	// all requests. A request whose documents do not fit is shed with
	// 429. Default 1024.
	QueueDepth int
	// MaxBatchDocs bounds one batch request; larger batches get 413.
	// Default 4096 (clamped to QueueDepth, since a batch larger than
	// the queue could never be admitted).
	MaxBatchDocs int
	// MaxBodyBytes bounds a request body. Default 32 MiB.
	MaxBodyBytes int64
	// MaxLineBytes bounds one JSONL line in a batch body; longer lines
	// are quarantined per corpus.ReadJSONLOpts. Default 1 MiB.
	MaxLineBytes int
	// RequestTimeout is the per-request deadline, layered onto the
	// client's own context. Default 30s; negative disables.
	RequestTimeout time.Duration
	// RetryAfter is the hint returned with 429/503 responses.
	// Default 1s.
	RetryAfter time.Duration
	// Metrics, if set, receives the serving instruments (request/
	// latency/queue-depth/batch-size) alongside the backend's scoring
	// metrics, and mounts /metrics, /metrics.json and /debug/pprof/ on
	// the server's own mux.
	Metrics *obs.Registry
}

// withDefaults fills zero-valued limits.
func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.MaxBatchDocs <= 0 {
		c.MaxBatchDocs = 4096
	}
	if c.MaxBatchDocs > c.QueueDepth {
		c.MaxBatchDocs = c.QueueDepth
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = 1 << 20
	}
	switch {
	case c.RequestTimeout < 0:
		c.RequestTimeout = 0
	case c.RequestTimeout == 0:
		c.RequestTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// errStopped is delivered to handlers whose documents were abandoned by
// a deadline-expired shutdown.
var errStopped = errors.New("serve: server stopped before the document was scored")

// pendingDoc routes one in-flight document's result back to its
// waiting request handler.
type pendingDoc struct {
	// userID is the caller-visible document ID, restored on delivery
	// (the stream itself runs on server-assigned unique IDs).
	userID string
	// pos is the document's position within its request, delivered as
	// Result.Index so batch handlers can reassemble input order.
	pos int
	// reply is the request's result channel, buffered for every
	// document in the request: delivery never blocks the collector,
	// even when the handler has already given up.
	reply chan resilience.Result[core.StreamDoc]
}

// Server is the scoring service. Create with New, optionally bind with
// Start, stop with Shutdown.
type Server struct {
	cfg Config
	mux *http.ServeMux
	m   *serverMetrics

	// in feeds the single long-lived backend scoring stream; out is
	// its result stream. cancel aborts the backend on forced shutdown.
	in     chan core.StreamDoc
	out    <-chan resilience.Result[core.StreamDoc]
	cancel context.CancelFunc

	nextID        atomic.Uint64
	collectorDone chan struct{}
	closeIn       sync.Once

	mu       sync.Mutex
	pending  map[string]pendingDoc
	inflight int           // admitted score requests
	queued   int           // admitted, not-yet-collected documents
	draining bool          // no new admissions
	drained  chan struct{} // closed when draining && inflight == 0

	web *obshttp.Server // set by Start
}

// New builds the server and starts its shared scoring stream. The
// returned server is immediately ready to handle requests (via Start
// or Handler).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:           cfg,
		cancel:        cancel,
		m:             newServerMetrics(cfg.Metrics),
		in:            make(chan core.StreamDoc, cfg.QueueDepth),
		pending:       make(map[string]pendingDoc),
		collectorDone: make(chan struct{}),
	}
	s.out = cfg.Backend.ScoreStream(ctx, s.in, core.StreamOptions{
		Workers:  cfg.Workers,
		Seed:     cfg.Seed,
		Annotate: cfg.Annotate,
		Metrics:  cfg.Metrics,
	})
	go s.collect()
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// Handler returns the server's mux: the scoring endpoints plus (with
// Metrics set) /metrics, /metrics.json and /debug/pprof/.
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds addr (":0" picks a free port) and serves the handler in
// the background with slowloris-safe timeouts until Shutdown.
func (s *Server) Start(addr string) error {
	web, err := obshttp.ServeHandler(addr, s.mux)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	s.web = web
	return nil
}

// Addr reports the bound address after Start.
func (s *Server) Addr() net.Addr {
	if s.web == nil {
		return nil
	}
	return s.web.Addr()
}

// Stats is a point-in-time view of the admission state.
type Stats struct {
	// InFlight is the number of admitted score requests being served.
	InFlight int
	// Queued is the number of admitted documents not yet scored.
	Queued int
	// Draining reports whether Shutdown has begun.
	Draining bool
}

// Stats returns the current admission state.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{InFlight: s.inflight, Queued: s.queued, Draining: s.draining}
}

// admit reserves one request slot and n document queue slots.
// draining=true means the server is shutting down (503); ok=false with
// draining=false means overload (429).
func (s *Server) admit(n int) (ok, draining bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false, true
	}
	if s.inflight >= s.cfg.MaxInFlight || s.queued+n > s.cfg.QueueDepth {
		return false, false
	}
	s.inflight++
	s.queued += n
	s.m.setInFlight(s.inflight)
	s.m.setQueue(s.queued)
	return true, false
}

// releaseRequest returns an admitted request's slot and wakes a
// drain-waiter once the last one finishes. Document slots are released
// by the collector as results arrive, not here: an abandoned document
// still occupies the queue until the pool has actually scored it.
func (s *Server) releaseRequest() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight--
	s.m.setInFlight(s.inflight)
	if s.draining && s.inflight == 0 && s.drained != nil {
		close(s.drained)
		s.drained = nil
	}
}

// enqueue registers docs under fresh internal IDs and feeds them to the
// shared scoring stream. userIDs and positions are restored on
// delivery. Admission already holds one queue slot per document and
// cap(s.in) == QueueDepth, so the sends cannot block.
func (s *Server) enqueue(docs []core.StreamDoc, userIDs []string, reply chan resilience.Result[core.StreamDoc]) {
	s.mu.Lock()
	for i := range docs {
		id := fmt.Sprintf("serve-%d", s.nextID.Add(1))
		s.pending[id] = pendingDoc{userID: userIDs[i], pos: i, reply: reply}
		docs[i].ID = id
	}
	s.mu.Unlock()
	for i := range docs {
		s.in <- docs[i]
	}
}

// collect is the single consumer of the backend's result stream: it
// releases each document's queue slot and routes the result back to
// its request, with the caller's ID and request-local position
// restored. When the stream closes under a forced shutdown, every
// still-pending document is failed so no handler waits forever.
func (s *Server) collect() {
	defer close(s.collectorDone)
	for res := range s.out {
		s.mu.Lock()
		p, ok := s.pending[res.Item.ID]
		if ok {
			delete(s.pending, res.Item.ID)
			s.queued--
			s.m.setQueue(s.queued)
		}
		s.mu.Unlock()
		if !ok {
			continue
		}
		res.Item.ID = p.userID
		res.Index = p.pos
		if res.Dead != nil {
			dead := *res.Dead
			dead.ID = p.userID
			res.Dead = &dead
		}
		s.m.docScored(res.Status)
		p.reply <- res
	}
	s.mu.Lock()
	abandoned := s.pending
	s.pending = make(map[string]pendingDoc)
	s.queued = 0
	s.m.setQueue(0)
	s.mu.Unlock()
	for _, p := range abandoned {
		p.reply <- resilience.Result[core.StreamDoc]{
			Index:  p.pos,
			Item:   core.StreamDoc{ID: p.userID},
			Status: resilience.StatusQuarantined,
			Dead:   &resilience.DeadLetter{ID: p.userID, Stage: "serve", Err: errStopped},
		}
	}
}

// Shutdown drains the server: stop admitting (readyz flips to 503 and
// new score requests are refused), finish every accepted request, close
// the scoring stream, and drain the HTTP listener, all bounded by ctx.
// On ctx expiry the backend is aborted and remaining waiters receive
// synthetic quarantine results. Safe to call more than once; returns
// nil when every accepted request completed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	var drained chan struct{}
	switch {
	case !s.draining:
		s.draining = true
		s.m.setDraining(true)
		drained = make(chan struct{})
		if s.inflight == 0 {
			close(drained)
		} else {
			s.drained = drained
		}
	case s.drained != nil:
		drained = s.drained
	default:
		drained = make(chan struct{})
		close(drained)
	}
	s.mu.Unlock()

	var err error
	drainOK := false
	select {
	case <-drained:
		drainOK = true
	default:
		select {
		case <-drained:
			drainOK = true
		case <-ctx.Done():
			err = fmt.Errorf("serve: drain: %w", ctx.Err())
			s.cancel()
		}
	}
	if drainOK {
		// Every accepted request has been answered; nothing will send
		// on s.in again, so the stream can drain and close cleanly.
		s.closeIn.Do(func() { close(s.in) })
	}
	select {
	case <-s.collectorDone:
	default:
		select {
		case <-s.collectorDone:
		case <-ctx.Done():
			if err == nil {
				err = fmt.Errorf("serve: drain: %w", ctx.Err())
			}
			s.cancel()
			<-s.collectorDone
		}
	}
	s.cancel()
	if s.web != nil {
		if werr := s.web.Close(ctx); werr != nil && err == nil {
			err = fmt.Errorf("serve: http drain: %w", werr)
		}
	}
	return err
}
