// Package serve is the production scoring service behind cmd/harassd:
// a long-running HTTP surface over the detector's zero-allocation
// scoring hot path. The paper's classifiers are exactly the kind of
// moderation infrastructure platforms call as an online service (the
// Perspective-API deployment model), and this package supplies the
// serving discipline such a deployment needs:
//
//   - sharded scoring: requests are routed onto N independent,
//     supervised scoring shards — each with its own backend stream
//     over the detector's pooled scorers, its own bounded queue and
//     its own pending table, no cross-shard locks on the scoring
//     path — so one stalled or panicking shard is a 1/N failure
//     domain, not a whole-service outage;
//   - self-healing: a heartbeat watchdog kills a stalled shard, panics
//     are captured, and the shard restarts under exponential backoff;
//     a per-shard circuit breaker (closed → open → half-open probe)
//     routes traffic around a shard that keeps dying;
//   - no-loss handoff: documents in flight on a dying shard are
//     re-dispatched exactly once to a healthy shard or answered with a
//     terminal 503 + Retry-After — never dropped, never answered
//     twice (see shard.go for the ownership invariants);
//   - admission control: a bounded in-flight request count and a
//     bounded per-shard scoring queue; overload is answered
//     immediately with 429 + Retry-After instead of an unbounded
//     goroutine pile-up;
//   - per-request deadlines propagated via context, and graceful
//     drain: Shutdown stops admitting, finishes every accepted
//     request, stops the shard fleet, and drains the HTTP listener,
//     all bounded by the caller's context.
//
// The invariant that keeps the hot path simple survives sharding:
// admission reserves one slot per document under the owning shard's
// lock and cap(shard.in) == shard depth, so a post-admission send on a
// shard queue can never block.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"harassrepro/internal/core"
	"harassrepro/internal/obs"
	"harassrepro/internal/obs/obshttp"
	"harassrepro/internal/resilience"
)

// Backend scores a stream of documents. *core.Detector implements it
// with the pooled zero-allocation scorers; tests substitute a fake with
// controllable latency. Each shard calls ScoreStream once per
// generation, so a Backend must support concurrent independent streams
// (the detector's scorer pool does).
type Backend interface {
	ScoreStream(ctx context.Context, in <-chan core.StreamDoc, opts core.StreamOptions) <-chan resilience.Result[core.StreamDoc]
}

// Thresholder exposes a model's per-platform decision thresholds, used
// by the shadow scorer to turn score divergence into label flips.
// *core.Detector satisfies it.
type Thresholder interface {
	CTHThreshold(platform string) float64
	DoxThreshold(platform string) float64
}

// Model is a versioned scoring artifact: the backend plus the registry
// identity the serve layer reports with every response. Shards score
// through an atomically swappable *Model handle, never a bare Backend,
// so the model can change under traffic (SwapModel) while every
// in-flight document still finishes on the generation that admitted
// it.
type Model struct {
	// Backend scores the documents. Required.
	Backend Backend
	// Generation is the registry generation number (1 for an unmanaged
	// boot-time model).
	Generation uint64
	// Seed is the model's training seed, surfaced on /healthz.
	Seed uint64
	// Thresholds, if set, supplies per-platform decision thresholds
	// for shadow label-flip accounting.
	Thresholds Thresholder
}

// FeedbackItem is one operator-labelled document posted to
// POST /v1/feedback: live ground truth feeding the retrain loop.
type FeedbackItem struct {
	ID       string `json:"id,omitempty"`
	Platform string `json:"platform,omitempty"`
	Text     string `json:"text"`
	// Task names the classifier the label applies to: "cth" or "dox"
	// (default "cth").
	Task string `json:"task,omitempty"`
	// Label is the operator's call on the document.
	Label bool `json:"label"`
	// Generation optionally records which model generation produced
	// the score the operator judged.
	Generation uint64 `json:"generation,omitempty"`
}

// FeedbackSink receives accepted feedback batches. Implementations
// must not block: the handler calls it on the request path.
type FeedbackSink interface {
	AddFeedback(items []FeedbackItem) error
}

// drainFlushTimeout bounds how long a dead generation flushes
// already-computed results before its survivors are redispatched.
const drainFlushTimeout = 3 * time.Second

// Config configures a Server. The zero value of every limit picks a
// production-safe default.
type Config struct {
	// Backend scores the documents. Required unless Model is set, in
	// which case it is ignored in favour of Model.Backend.
	Backend Backend
	// Model is the initial versioned model handle. When nil, Backend
	// is wrapped as generation 1 with the server seed.
	Model *Model
	// Feedback, if set, enables POST /v1/feedback and receives the
	// accepted items.
	Feedback FeedbackSink
	// Admin, if set, is mounted under /v1/admin/ (stripped prefix) —
	// the model-lifecycle control surface (swap/promote/rollback).
	Admin http.Handler
	// Shards is the number of independent scoring shards. Default
	// min(GOMAXPROCS, 8).
	Shards int
	// Workers bounds the total scoring pool, divided across shards
	// (each shard gets at least one worker). 0 = GOMAXPROCS.
	Workers int
	// Seed drives the detector's deterministic span sampling and the
	// shard supervisors' restart jitter.
	Seed uint64
	// Annotate adds the PII and taxonomy/seed-query stages to every
	// scored document.
	Annotate bool
	// MaxInFlight bounds concurrently admitted score requests; excess
	// requests are shed with 429. Default 256.
	MaxInFlight int
	// QueueDepth bounds documents admitted but not yet scored, divided
	// across shards (ceil(QueueDepth/Shards) each, min 1). A request
	// whose documents fit no shard is shed with 429. Default 1024.
	QueueDepth int
	// MaxBatchDocs bounds one batch request; larger batches get 413.
	// Default 4096 (clamped to the per-shard queue depth, since a
	// request's documents are routed to one shard and a larger batch
	// could never be admitted).
	MaxBatchDocs int
	// MaxBodyBytes bounds a request body. Default 32 MiB.
	MaxBodyBytes int64
	// MaxLineBytes bounds one JSONL line in a batch body; longer lines
	// are quarantined per corpus.ReadJSONLOpts. Default 1 MiB.
	MaxLineBytes int
	// RequestTimeout is the per-request deadline, layered onto the
	// client's own context. Default 30s; negative disables.
	RequestTimeout time.Duration
	// RetryAfter is the hint returned with 429/503 responses.
	// Default 1s.
	RetryAfter time.Duration
	// StallTimeout is how long a busy shard may go without delivering
	// a result before its generation is killed as stalled. Default 2s.
	StallTimeout time.Duration
	// BreakerThreshold is the consecutive generation failures that
	// open a shard's circuit breaker. Default 3.
	BreakerThreshold int
	// BreakerOpenTimeout is how long an open breaker refuses traffic
	// before allowing a half-open probe. Default 5s.
	BreakerOpenTimeout time.Duration
	// RestartBackoff is the shard restart backoff policy. Zero values
	// pick 10ms base / 1s cap.
	RestartBackoff resilience.RetryPolicy
	// Faults, if set, injects serve-layer faults into every shard's
	// collect loop (see FaultInjector); wired to `harassd -chaos`.
	Faults FaultInjector
	// Metrics, if set, receives the serving instruments (request/
	// latency/queue-depth/batch-size plus per-shard restart, breaker
	// and redispatch counters) alongside the backend's scoring
	// metrics, and mounts /metrics, /metrics.json and /debug/pprof/ on
	// the server's own mux.
	Metrics *obs.Registry
}

// withDefaults fills zero-valued limits.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
		if c.Shards > 8 {
			c.Shards = 8
		}
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.MaxBatchDocs <= 0 {
		c.MaxBatchDocs = 4096
	}
	if perShard := (c.QueueDepth + c.Shards - 1) / c.Shards; c.MaxBatchDocs > perShard {
		c.MaxBatchDocs = perShard
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = 1 << 20
	}
	switch {
	case c.RequestTimeout < 0:
		c.RequestTimeout = 0
	case c.RequestTimeout == 0:
		c.RequestTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = 2 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerOpenTimeout <= 0 {
		c.BreakerOpenTimeout = 5 * time.Second
	}
	if c.RestartBackoff.BaseDelay <= 0 {
		c.RestartBackoff.BaseDelay = 10 * time.Millisecond
	}
	if c.RestartBackoff.MaxDelay <= 0 {
		c.RestartBackoff.MaxDelay = time.Second
	}
	return c
}

// errStopped is delivered to handlers whose documents were abandoned by
// a deadline-expired shutdown.
var errStopped = errors.New("serve: server stopped before the document was scored")

// Server is the scoring service. Create with New, optionally bind with
// Start, stop with Shutdown.
type Server struct {
	cfg Config
	mux *http.ServeMux
	m   *serverMetrics

	shards     []*shard
	rootCtx    context.Context
	rootCancel context.CancelFunc
	supDone    chan struct{} // closed when every shard supervisor has exited

	// model is the swappable handle every new shard session scores
	// through; swapMu serialises SwapModel calls so concurrent swaps
	// apply in a total order (each one exactly once).
	model  atomic.Pointer[Model]
	swapMu sync.Mutex
	// shadow is the optional candidate-model shadow scorer.
	shadow atomic.Pointer[shadowState]

	nextID      atomic.Uint64
	queuedTotal atomic.Int64 // aggregate admitted-unscored documents
	isStopped   atomic.Bool  // set when the fleet is being torn down

	mu            sync.Mutex
	inflight      int           // admitted score requests
	draining      bool          // no new admissions
	drained       chan struct{} // closed when draining && inflight == 0
	abandonedReqs int           // requests force-failed at drain expiry
	abandonedDocs int           // their documents

	web *obshttp.Server // set by Start
}

// New builds the server and starts its shard fleet; it returns once
// every shard's first generation is accepting documents.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	rootCtx, rootCancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		rootCtx:    rootCtx,
		rootCancel: rootCancel,
		m:          newServerMetrics(cfg.Metrics, cfg.Shards),
		supDone:    make(chan struct{}),
	}
	mdl := cfg.Model
	if mdl == nil {
		mdl = &Model{Backend: cfg.Backend, Generation: 1, Seed: cfg.Seed}
	}
	s.model.Store(mdl)
	s.m.setGeneration(mdl.Generation)
	totalWorkers := cfg.Workers
	if totalWorkers <= 0 {
		totalWorkers = runtime.GOMAXPROCS(0)
	}
	perWorkers := totalWorkers / cfg.Shards
	if perWorkers < 1 {
		perWorkers = 1
	}
	perDepth := (cfg.QueueDepth + cfg.Shards - 1) / cfg.Shards
	if perDepth < 1 {
		perDepth = 1
	}
	var wg sync.WaitGroup
	for i := 0; i < cfg.Shards; i++ {
		sh := newShard(s, i, perDepth, perWorkers)
		s.shards = append(s.shards, sh)
		wg.Add(1)
		go func() {
			defer wg.Done()
			sh.supervise(rootCtx)
		}()
	}
	go func() {
		wg.Wait()
		close(s.supDone)
	}()
	for _, sh := range s.shards {
		<-sh.ready
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// Handler returns the server's mux: the scoring endpoints plus (with
// Metrics set) /metrics, /metrics.json and /debug/pprof/.
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds addr (":0" picks a free port) and serves the handler in
// the background with slowloris-safe timeouts until Shutdown.
func (s *Server) Start(addr string) error {
	web, err := obshttp.ServeHandler(addr, s.mux)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	s.web = web
	return nil
}

// Addr reports the bound address after Start.
func (s *Server) Addr() net.Addr {
	if s.web == nil {
		return nil
	}
	return s.web.Addr()
}

// ShardStats is one shard's point-in-time state.
type ShardStats struct {
	ID      int
	State   string // starting | running | down
	Breaker string // closed | half-open | open
	Gen     int    // current generation number
	Queued  int    // admitted, unscored documents on this shard
	Depth   int    // the shard's queue bound
	// Lifetime counters.
	Restarts     uint64 // failed generations (each one restarted)
	Stalls       uint64 // generations killed by the heartbeat watchdog
	Panics       uint64 // generations killed by a captured panic
	Redispatched uint64 // documents moved off this shard's dead generations
}

// Stats is a point-in-time view of the admission state. Queued is
// always the sum of the per-shard queues, so the aggregate and
// per-shard views cannot disagree with the admission decisions taken
// under the shard locks.
type Stats struct {
	// InFlight is the number of admitted score requests being served.
	InFlight int
	// Queued is the number of admitted documents not yet scored,
	// summed across shards.
	Queued int
	// QueueCapacity is the total document capacity (sum of shard depths).
	QueueCapacity int
	// HealthyShards counts shards that are accepting and whose breaker
	// is not open.
	HealthyShards int
	// Draining reports whether Shutdown has begun.
	Draining bool
	// Shards holds the per-shard detail.
	Shards []ShardStats
}

// Stats returns the current admission state.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := Stats{InFlight: s.inflight, Draining: s.draining}
	s.mu.Unlock()
	for _, sh := range s.shards {
		ss := sh.stats()
		st.Shards = append(st.Shards, ss)
		st.Queued += ss.Queued
		st.QueueCapacity += ss.Depth
		if ss.State == shardRunning.String() && ss.Breaker != resilience.BreakerOpen.String() {
			st.HealthyShards++
		}
	}
	return st
}

// Abandoned reports the requests (and their documents) force-failed
// because Shutdown's context expired before the drain completed. Both
// are zero after a clean drain.
func (s *Server) Abandoned() (requests, docs int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.abandonedReqs, s.abandonedDocs
}

// ready reports whether a quorum of shards can take traffic: strictly
// more than half the fleet is accepting with a non-open breaker.
func (s *Server) ready() bool {
	healthy := 0
	for _, sh := range s.shards {
		if sh.healthy() {
			healthy++
		}
	}
	return 2*healthy > len(s.shards)
}

// stopped reports whether the fleet is being torn down (redispatch
// must answer errStopped instead of re-homing documents).
func (s *Server) stopped() bool { return s.isStopped.Load() }

// noteQueue tracks the aggregate queued-document gauge.
func (s *Server) noteQueue(delta int) {
	s.m.setQueue(int(s.queuedTotal.Add(int64(delta))))
}

// admitRequest reserves one request slot. draining=true means the
// server is shutting down (503); ok=false with draining=false means
// the in-flight bound is hit (429).
func (s *Server) admitRequest() (ok, draining bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false, true
	}
	if s.inflight >= s.cfg.MaxInFlight {
		return false, false
	}
	s.inflight++
	s.m.setInFlight(s.inflight)
	return true, false
}

// releaseRequest returns an admitted request's slot and wakes a
// drain-waiter once the last one finishes. Document slots are released
// by the shard collectors as results arrive, not here: an abandoned
// document still occupies its queue until the shard has answered it.
func (s *Server) releaseRequest() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight--
	s.m.setInFlight(s.inflight)
	if s.draining && s.inflight == 0 && s.drained != nil {
		close(s.drained)
		s.drained = nil
	}
}

// enqueue routes one request's documents to a shard. entries are
// built here from the parallel docs/userIDs slices.
func (s *Server) enqueue(docs []core.StreamDoc, userIDs []string, reply chan scored) dispatchStatus {
	entries := make([]pendingDoc, len(docs))
	for i := range docs {
		entries[i] = pendingDoc{doc: docs[i], userID: userIDs[i], pos: i, reply: reply}
	}
	return s.dispatch(docs, entries)
}

// failAllPending force-fails every document still pending on any
// shard with errStopped, so no handler waits past a forced shutdown.
// Returns the number of documents failed.
func (s *Server) failAllPending() int {
	total := 0
	for _, sh := range s.shards {
		lost := sh.sweepPending()
		for _, p := range lost {
			s.answerLost(p, errStopped)
		}
		total += len(lost)
	}
	return total
}

// Shutdown drains the server: stop admitting (readyz flips to 503 and
// new score requests are refused), finish every accepted request —
// including re-homing documents off any shard that dies mid-drain —
// then stop the shard fleet and drain the HTTP listener, all bounded
// by ctx. On ctx expiry remaining waiters receive synthetic
// quarantine results and are counted in Abandoned. Safe to call more
// than once; returns nil when every accepted request completed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	var drained chan struct{}
	switch {
	case !s.draining:
		s.draining = true
		s.m.setDraining(true)
		drained = make(chan struct{})
		if s.inflight == 0 {
			close(drained)
		} else {
			s.drained = drained
		}
	case s.drained != nil:
		drained = s.drained
	default:
		drained = make(chan struct{})
		close(drained)
	}
	s.mu.Unlock()

	var err error
	select {
	case <-drained:
	default:
		select {
		case <-drained:
		case <-ctx.Done():
			err = fmt.Errorf("serve: drain: %w", ctx.Err())
			// Forced: answer every still-pending document so no
			// handler blocks, and account the abandonment.
			s.isStopped.Store(true)
			docs := s.failAllPending()
			s.mu.Lock()
			if docs > 0 || s.inflight > 0 {
				s.abandonedReqs = s.inflight
				s.abandonedDocs = docs
			}
			s.mu.Unlock()
		}
	}

	// Stop the fleet. On the clean path every pending table is empty,
	// so the generation teardowns find nothing to redispatch. Shard
	// tasks honour cancellation, so the supervisors exit within the
	// bounded teardown flush.
	s.isStopped.Store(true)
	s.rootCancel()
	<-s.supDone
	if s.web != nil {
		if werr := s.web.Close(ctx); werr != nil && err == nil {
			err = fmt.Errorf("serve: http drain: %w", werr)
		}
	}
	return err
}
