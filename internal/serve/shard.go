package serve

// One scoring shard: an independent failure domain with its own
// bounded queue, its own backend scoring stream (own detector
// session/pool via Backend.ScoreStream), its own pending table, and no
// locks shared with other shards on the scoring path. A shard runs as
// a sequence of supervised generations: when a generation dies — a
// panic in the collect path, a heartbeat stall, a backend error — the
// supervisor tears it down, the shard's in-flight documents are
// re-dispatched exactly once to a healthy shard (or answered with a
// terminal shard-unavailable result the handlers turn into 503 +
// Retry-After), and a fresh generation is started under exponential
// backoff. A per-shard circuit breaker keeps the router from queueing
// into a shard that keeps dying.
//
// Ownership invariants, asserted by the -race chaos tests:
//
//   - every admitted document lives in exactly one shard's pending
//     table at any moment; admission registers it under the shard lock
//     in the same critical section that reserves its queue slot, so a
//     dying generation's sweep always sees it;
//   - a document's terminal answer is sent exactly once: delivery,
//     redispatch and sweep all remove the pending entry under the
//     shard lock before answering, and a late result whose entry is
//     gone is dropped;
//   - a document is re-dispatched at most once (pendingDoc.redispatched);
//     losing its second shard yields the terminal errShardLost answer.

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"harassrepro/internal/core"
	"harassrepro/internal/resilience"
)

// FaultInjector injects serve-layer faults into a shard's collect
// loop; implemented by chaos.ServePlan. BeforeDeliver runs in shard
// `shard`'s generation `gen` before its n-th result is delivered. It
// may panic (a shard panic, captured and converted into a generation
// failure), block until ctx is done and return an error (a hard
// stall: the supervisor's watchdog kills the generation), sleep
// briefly (a latency spike), or return nil (no fault). Implementations
// must honour ctx so a killed generation always unwinds.
type FaultInjector interface {
	BeforeDeliver(ctx context.Context, shard, gen, n int) error
}

// errShardLost is the terminal error for a document whose shard died
// after its single redispatch (or with no healthy shard to take it).
// Handlers convert it into 503 + Retry-After.
var errShardLost = errors.New("serve: scoring shard lost; retry")

// shardState is a shard's admission state.
type shardState int32

const (
	shardStarting shardState = iota // first generation not yet open
	shardRunning                    // generation open, accepting documents
	shardDown                       // between generations (dead or restarting)
)

func (s shardState) String() string {
	switch s {
	case shardStarting:
		return "starting"
	case shardRunning:
		return "running"
	default:
		return "down"
	}
}

// scored is one terminal answer: the backend result plus the model
// generation that produced it, stamped by the delivering session so a
// response is attributable to exactly one model (gen 0 = never scored,
// e.g. a quarantined shard-lost answer).
type scored struct {
	res resilience.Result[core.StreamDoc]
	gen uint64
}

// pendingDoc is one admitted document awaiting its result: the routing
// info to answer its request plus the input document itself, so a
// dying shard can hand ownership to a healthy one.
type pendingDoc struct {
	// doc is the original input (platform/text), needed to re-enqueue
	// on redispatch.
	doc core.StreamDoc
	// userID is the caller-visible document ID, restored on delivery
	// (streams run on server-assigned unique IDs).
	userID string
	// pos is the document's position within its request, delivered as
	// Result.Index so batch handlers can reassemble input order.
	pos int
	// reply is the request's result channel, buffered for every
	// document in the request: delivery never blocks a collector.
	reply chan scored
	// redispatched marks a document already moved off one dead shard;
	// it will not be moved again.
	redispatched bool
}

// shard is one supervised scoring shard.
type shard struct {
	id      int
	srv     *Server
	depth   int // bounded queue depth (== cap of each generation's in channel)
	workers int
	breaker *resilience.Breaker
	sm      *shardMetrics

	mu      sync.Mutex
	state   shardState
	gen     int                   // current (or last) supervisor generation number
	in      chan core.StreamDoc   // current session's input channel
	hb      *resilience.Heartbeat // current generation's heartbeat
	pending map[string]pendingDoc
	queued  int
	// modelGen is the model generation the current session scores
	// with; deliver stamps it onto every answer.
	modelGen uint64
	// rotate is the current session's hand-over signal (closed at most
	// once per session, guarded by rotated); nil between sessions.
	rotate  chan struct{}
	rotated bool
	// sending counts dispatches that reserved queue slots but have not
	// finished their (non-blocking) channel sends yet; a graceful
	// rotation waits for it to reach zero before closing in.
	sending  int
	sendIdle *sync.Cond

	// lifetime counters (under mu; mirrored to metrics).
	restarts     uint64
	stalls       uint64
	panics       uint64
	redispatched uint64

	// ready is closed when the first generation opens: New waits for
	// it so the server never refuses traffic during startup.
	ready     chan struct{}
	readyOnce sync.Once
}

func newShard(s *Server, id, depth, workers int) *shard {
	sh := &shard{
		id:      id,
		srv:     s,
		depth:   depth,
		workers: workers,
		pending: make(map[string]pendingDoc),
		ready:   make(chan struct{}),
		sm:      s.m.forShard(id),
	}
	sh.sendIdle = sync.NewCond(&sh.mu)
	sh.breaker = resilience.NewBreaker(resilience.BreakerConfig{
		FailureThreshold: s.cfg.BreakerThreshold,
		OpenTimeout:      s.cfg.BreakerOpenTimeout,
		OnTransition: func(_, to resilience.BreakerState) {
			sh.sm.setBreaker(to)
		},
	})
	return sh
}

// supervise runs the shard's generations until rootCtx is cancelled.
func (sh *shard) supervise(rootCtx context.Context) {
	resilience.Supervise(rootCtx, resilience.SupervisorConfig{ //nolint:errcheck // exits are routed through onExit
		Name:         fmt.Sprintf("shard-%d", sh.id),
		Seed:         sh.srv.cfg.Seed,
		Backoff:      sh.srv.cfg.RestartBackoff,
		StallTimeout: sh.srv.cfg.StallTimeout,
		HealthyAfter: 10 * time.Second,
		OnExit:       sh.onExit,
	}, sh.task)
	// Supervision over (shutdown): make sure nothing routes here and
	// any waiter on startup readiness is released.
	sh.mu.Lock()
	sh.state = shardDown
	sh.mu.Unlock()
	sh.readyOnce.Do(func() { close(sh.ready) })
}

// onExit records one failed generation: breaker failure, restart and
// cause accounting.
func (sh *shard) onExit(_ int, _ time.Duration, err error, _ time.Duration) {
	sh.breaker.Failure()
	sh.mu.Lock()
	sh.restarts++
	if errors.Is(err, resilience.ErrStalled) {
		sh.stalls++
	}
	var pe *resilience.PanicError
	if errors.As(err, &pe) {
		sh.panics++
	}
	sh.mu.Unlock()
	sh.sm.generationFailed(err)
}

// errRotated is the internal sentinel a session returns after a
// graceful model hand-over. It never reaches the supervisor: task
// consumes it and opens the next session on the published model, so a
// rotation is not a failure (no breaker hit, no restart backoff).
var errRotated = errors.New("serve: session rotated to a new model")

// task is one supervised generation: a loop of scoring sessions. Each
// session scores through the model handle published at its open; a
// graceful model rotation ends the session with errRotated and the
// loop immediately opens the next one on the new model. Any other exit
// (panic, stall, backend error, shutdown) propagates to the supervisor
// as before.
func (sh *shard) task(gctx context.Context, gen int, hb *resilience.Heartbeat) error {
	for {
		err := sh.session(gctx, gen, hb)
		if !errors.Is(err, errRotated) {
			return err
		}
		if gctx.Err() != nil {
			return gctx.Err()
		}
	}
}

// session opens one backend stream on the current model and collects
// results until the session dies, shuts down, or is asked to rotate.
// Teardown flushes already-computed results, sweeps the pending table,
// and hands the survivors to the server for redispatch; the graceful
// rotation path closes the input first so the old backend finishes —
// and the session delivers — everything admitted to it, keeping every
// response scored wholly by one generation.
func (sh *shard) session(gctx context.Context, gen int, hb *resilience.Heartbeat) error {
	mdl := sh.srv.model.Load()
	sctx, scancel := context.WithCancel(gctx)
	defer scancel()
	in := make(chan core.StreamDoc, sh.depth)
	out := mdl.Backend.ScoreStream(sctx, in, core.StreamOptions{
		Workers:  sh.workers,
		Seed:     sh.srv.cfg.Seed,
		Annotate: sh.srv.cfg.Annotate,
		Metrics:  sh.srv.cfg.Metrics,
	})
	rotate := make(chan struct{})
	sh.openSession(gen, in, hb, mdl.Generation, rotate)

	err := sh.collect(gctx, gen, out, hb, rotate)

	sh.closeGen()
	if errors.Is(err, errRotated) {
		// Graceful hand-over: no new admissions (closeGen), wait for
		// reserved sends to land, then close the input so the old
		// backend finishes its queue and closes out; deliver it all.
		sh.waitSendsIdle()
		close(in)
		sh.flushClosed(gctx, out, hb)
	}
	scancel()
	sh.drainOut(out)
	lost := sh.sweepPending()
	if moved := sh.srv.redispatch(lost); moved > 0 {
		sh.noteRedispatched(moved)
	}
	return err
}

// openSession publishes a new session's queue, heartbeat, model
// generation and rotation signal, and starts accepting documents. The
// carried-over queue is always empty here: closeGen + sweep ran before
// the previous session returned.
func (sh *shard) openSession(gen int, in chan core.StreamDoc, hb *resilience.Heartbeat, modelGen uint64, rotate chan struct{}) {
	sh.mu.Lock()
	sh.gen = gen
	sh.in = in
	sh.hb = hb
	sh.modelGen = modelGen
	sh.rotate = rotate
	sh.rotated = false
	sh.state = shardRunning
	sh.mu.Unlock()
	sh.sm.setState(shardRunning)
	sh.readyOnce.Do(func() { close(sh.ready) })
}

// waitSendsIdle blocks until no dispatch holds reserved-but-unsent
// queue slots on this shard. Admissions are already closed, and
// reserved sends cannot block (cap(in) == depth), so this resolves
// promptly.
func (sh *shard) waitSendsIdle() {
	sh.mu.Lock()
	for sh.sending > 0 {
		sh.sendIdle.Wait()
	}
	sh.mu.Unlock()
}

// flushClosed delivers every result of a closed-input stream until the
// backend closes out, bounded so a wedged backend cannot pin the
// rotation (survivors are swept and redispatched like any dead
// generation's).
func (sh *shard) flushClosed(gctx context.Context, out <-chan resilience.Result[core.StreamDoc], hb *resilience.Heartbeat) {
	t := time.NewTimer(drainFlushTimeout)
	defer t.Stop()
	for {
		select {
		case res, ok := <-out:
			if !ok {
				return
			}
			hb.Beat()
			sh.deliver(res)
		case <-t.C:
			return
		case <-gctx.Done():
			return
		}
	}
}

// closeGen stops admissions to the current session and retires its
// rotation signal (a dead session needs no hand-over; its successor
// reads the published model handle).
func (sh *shard) closeGen() {
	sh.mu.Lock()
	sh.state = shardDown
	sh.rotate = nil
	sh.mu.Unlock()
	sh.sm.setState(shardDown)
}

// collect is the session's single result consumer. Panics (its own
// or injected) are captured as the session error so the teardown in
// session always runs. A rotation signal ends collection with
// errRotated — the graceful hand-over path.
func (sh *shard) collect(gctx context.Context, gen int, out <-chan resilience.Result[core.StreamDoc], hb *resilience.Heartbeat, rotate <-chan struct{}) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &resilience.PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	inj := sh.srv.cfg.Faults
	for n := 0; ; n++ {
		select {
		case res, ok := <-out:
			if !ok {
				return nil
			}
			if inj != nil {
				if ferr := inj.BeforeDeliver(gctx, sh.id, gen, n); ferr != nil {
					// The held result is not delivered: its document
					// stays pending and is redispatched by the sweep.
					return ferr
				}
			}
			hb.Beat()
			sh.deliver(res)
		case <-rotate:
			return errRotated
		case <-gctx.Done():
			return gctx.Err()
		}
	}
}

// admit reserves queue slots for docs and registers their pending
// entries in one critical section, returning the generation input
// channel to send on. ok=false reasons: the shard is not running or
// its breaker refused (unavailable=true), or the queue is full. After
// ok=true the sends cannot block (cap(in) == depth and every slot is
// reserved here) and in is never closed, so the caller may send
// outside the lock even if the generation dies meanwhile — the swept
// entries are redispatched.
func (sh *shard) admit(docs []core.StreamDoc, entries []pendingDoc) (in chan<- core.StreamDoc, ok, unavailable bool) {
	sh.mu.Lock()
	if sh.state != shardRunning {
		sh.mu.Unlock()
		return nil, false, true
	}
	if sh.queued+len(docs) > sh.depth {
		sh.mu.Unlock()
		return nil, false, false
	}
	if !sh.breaker.Allow() {
		sh.mu.Unlock()
		return nil, false, true
	}
	sh.queued += len(docs)
	sh.hb.AddBusy(len(docs))
	sh.sending++
	genIn := sh.in
	for i := range docs {
		id := fmt.Sprintf("serve-%d", sh.srv.nextID.Add(1))
		docs[i].ID = id
		sh.pending[id] = entries[i]
	}
	queued := sh.queued
	sh.mu.Unlock()
	sh.sm.setQueue(queued)
	sh.srv.noteQueue(len(docs))
	return genIn, true, false
}

// sendDone marks an admitted dispatch's sends complete, releasing a
// rotation waiting to close the session's input.
func (sh *shard) sendDone() {
	sh.mu.Lock()
	sh.sending--
	sh.mu.Unlock()
	sh.sendIdle.Broadcast()
}

// deliver routes one backend result to its waiting request, releasing
// the document's queue slot and stamping the session's model
// generation (the model that actually scored it). Results whose
// pending entry is gone (redispatched or already settled) are dropped:
// the entry owner answered or will answer. Successful results are
// offered to the shadow scorer, off the shard lock.
func (sh *shard) deliver(res resilience.Result[core.StreamDoc]) {
	sh.mu.Lock()
	p, ok := sh.pending[res.Item.ID]
	if ok {
		delete(sh.pending, res.Item.ID)
		sh.queued--
		sh.hb.AddBusy(-1)
	}
	queued := sh.queued
	gen := sh.modelGen
	sh.mu.Unlock()
	if !ok {
		return
	}
	sh.sm.setQueue(queued)
	sh.srv.noteQueue(-1)
	sh.breaker.Success()
	res.Item.ID = p.userID
	res.Index = p.pos
	if res.Dead != nil {
		dead := *res.Dead
		dead.ID = p.userID
		res.Dead = &dead
	}
	sh.srv.m.docScored(res.Status)
	p.reply <- scored{res: res, gen: gen}
	if res.Status != resilience.StatusQuarantined {
		if st := sh.srv.shadow.Load(); st != nil {
			st.offer(p.doc, res.Item, gen)
		}
	}
}

// drainOut flushes results the backend had already computed when the
// generation was cancelled, bounded so a wedged backend cannot pin the
// restart. Flushed results are delivered normally (their documents
// need no redispatch); no faults are injected post-mortem.
func (sh *shard) drainOut(out <-chan resilience.Result[core.StreamDoc]) {
	t := time.NewTimer(drainFlushTimeout)
	defer t.Stop()
	for {
		select {
		case res, ok := <-out:
			if !ok {
				return
			}
			sh.deliver(res)
		case <-t.C:
			return
		}
	}
}

// sweepPending takes ownership of every document the dead generation
// still held. It also releases the heartbeat busy counts the swept
// documents were holding: the session loop reuses one heartbeat across
// rotations, so residual busy would read as a permanent stall.
func (sh *shard) sweepPending() map[string]pendingDoc {
	sh.mu.Lock()
	lost := sh.pending
	sh.pending = make(map[string]pendingDoc)
	n := sh.queued
	sh.queued = 0
	if n > 0 && sh.hb != nil {
		sh.hb.AddBusy(-n)
	}
	sh.mu.Unlock()
	if n > 0 {
		sh.sm.setQueue(0)
		sh.srv.noteQueue(-n)
	}
	return lost
}

// stats snapshots the shard under its lock.
func (sh *shard) stats() ShardStats {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return ShardStats{
		ID:           sh.id,
		State:        sh.state.String(),
		Breaker:      sh.breaker.State().String(),
		Gen:          sh.gen,
		Queued:       sh.queued,
		Depth:        sh.depth,
		Restarts:     sh.restarts,
		Stalls:       sh.stalls,
		Panics:       sh.panics,
		Redispatched: sh.redispatched,
	}
}

// healthy reports whether the router should consider this shard: it is
// accepting and its breaker is not open. (Half-open counts: probes are
// how a recovered shard re-earns traffic.)
func (sh *shard) healthy() bool {
	sh.mu.Lock()
	running := sh.state == shardRunning
	sh.mu.Unlock()
	return running && sh.breaker.State() != resilience.BreakerOpen
}

// queueLen reads the shard's queue depth for least-loaded routing.
func (sh *shard) queueLen() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.queued
}

// noteRedispatched counts documents moved off this shard.
func (sh *shard) noteRedispatched(n int) {
	sh.mu.Lock()
	sh.redispatched += uint64(n)
	sh.mu.Unlock()
	sh.sm.redispatched(n)
}

// dispatchStatus classifies a routing attempt.
type dispatchStatus int

const (
	dispatchOK          dispatchStatus = iota
	dispatchFull                       // healthy shards exist but none had queue space: 429
	dispatchUnavailable                // no shard was accepting traffic at all: 503
)

// dispatch routes one request's documents to a single shard (keeping a
// request's documents together preserves the per-request reply
// machinery and bounds cross-shard fan-out): least-queued healthy
// shard first. entries[i] must describe docs[i].
func (s *Server) dispatch(docs []core.StreamDoc, entries []pendingDoc) dispatchStatus {
	order := s.shardsByLoad()
	sawFull := false
	for _, sh := range order {
		in, ok, _ := sh.admit(docs, entries)
		if ok {
			for i := range docs {
				in <- docs[i]
			}
			sh.sendDone()
			return dispatchOK
		}
		if sh.healthy() {
			sawFull = true
		}
	}
	if sawFull {
		return dispatchFull
	}
	return dispatchUnavailable
}

// shardsByLoad returns the shards sorted by current queue length
// (ascending), a cheap least-loaded router over a small fixed fleet.
func (s *Server) shardsByLoad() []*shard {
	order := make([]*shard, len(s.shards))
	copy(order, s.shards)
	loads := make([]int, len(order))
	for i, sh := range order {
		loads[i] = sh.queueLen()
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && loads[j] < loads[j-1]; j-- {
			loads[j], loads[j-1] = loads[j-1], loads[j]
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// redispatch re-homes documents swept off a dead generation: each is
// moved exactly once to a healthy shard, or answered with the terminal
// errShardLost result. During a forced shutdown the documents are
// answered with errStopped instead, like every other abandoned waiter.
// Returns the number successfully re-homed.
func (s *Server) redispatch(lost map[string]pendingDoc) int {
	if len(lost) == 0 {
		return 0
	}
	moved := 0
	for _, p := range lost {
		if s.stopped() {
			s.answerLost(p, errStopped)
			continue
		}
		if p.redispatched {
			s.answerLost(p, errShardLost)
			continue
		}
		docs := []core.StreamDoc{p.doc}
		entries := []pendingDoc{{doc: p.doc, userID: p.userID, pos: p.pos, reply: p.reply, redispatched: true}}
		if s.dispatch(docs, entries) == dispatchOK {
			moved++
			continue
		}
		s.answerLost(p, errShardLost)
	}
	if moved > 0 {
		s.m.redispatches(moved)
	}
	return moved
}

// answerLost delivers the terminal failure answer for a document whose
// shard died without scoring it.
func (s *Server) answerLost(p pendingDoc, cause error) {
	if errors.Is(cause, errShardLost) {
		s.m.redispatchFailed()
	}
	s.m.docScored(resilience.StatusQuarantined)
	p.reply <- scored{res: resilience.Result[core.StreamDoc]{
		Index:  p.pos,
		Item:   core.StreamDoc{ID: p.userID},
		Status: resilience.StatusQuarantined,
		Dead:   &resilience.DeadLetter{ID: p.userID, Stage: "serve-shard", Err: cause},
	}}
}
