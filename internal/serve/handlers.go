package serve

// HTTP surface: request parsing, admission, and response assembly for
// the scoring endpoints. Wire format notes:
//
//   POST /v1/score        {"id","platform","text"} -> ScoreResult (the
//                         X-Model-Generation header and the
//                         model_generation field name the model that
//                         scored it)
//   POST /v1/score/batch  JSONL (one document per line, lenient: bad
//                         lines are quarantined and reported, reusing
//                         corpus.ReadJSONLOpts) or a JSON array of
//                         score requests -> BatchResponse
//   POST /v1/feedback     JSON array of FeedbackItem -> 202 with the
//                         accepted count (registered only when a
//                         FeedbackSink is configured)
//   GET  /healthz         process liveness, always 200; reports the
//                         active model generation and training seed
//   GET  /readyz          200 while a quorum of shards is healthy, 503
//                         once draining or when half or more of the
//                         shard fleet is down/open (degraded); the
//                         ready body carries generation and seed too
//
// With Config.Admin set, the model-lifecycle control surface is
// mounted under /v1/admin/ with the prefix stripped.
//
// Overload and drain semantics: 429 + Retry-After when the in-flight
// bound is hit or every healthy shard's queue is full, 503 +
// Retry-After once Shutdown has begun or when no shard is accepting
// traffic (all down or breaker-open), 503 + Retry-After when a
// document's shard died and its single redispatch could not re-home it
// (single-doc route; batch responses carry the failure per document),
// 413 for bodies or batches over their limits, 504 when the
// per-request deadline expires before scoring completes.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"harassrepro/internal/core"
	"harassrepro/internal/corpus"
	"harassrepro/internal/obs/obshttp"
	"harassrepro/internal/resilience"
)

// ScoreRequest is one document to score.
type ScoreRequest struct {
	ID       string `json:"id,omitempty"`
	Platform string `json:"platform,omitempty"`
	Text     string `json:"text"`
}

// ScoreResult is one scored document.
type ScoreResult struct {
	ID string `json:"id,omitempty"`
	// Status is "ok", "degraded" (an optional annotation stage failed;
	// Degraded names it) or "quarantined" (scoring failed permanently;
	// Error holds the cause and the scores are unset).
	Status    string   `json:"status"`
	CTH       float64  `json:"cth"`
	Dox       float64  `json:"dox"`
	PII       []string `json:"pii,omitempty"`
	Attacks   []string `json:"attacks,omitempty"`
	SeedQuery bool     `json:"seed_query"`
	Degraded  []string `json:"degraded,omitempty"`
	Error     string   `json:"error,omitempty"`
	// ModelGen is the model generation that scored this document (0
	// when the document was never scored, e.g. a lost-shard failure).
	ModelGen uint64 `json:"model_generation,omitempty"`
}

// BatchLineError is one rejected batch input: a malformed or oversized
// JSONL line, or an array element with no text.
type BatchLineError struct {
	// Line is the 1-based JSONL line number, or the 1-based array
	// index for JSON-array bodies.
	Line    int    `json:"line"`
	Error   string `json:"error"`
	Preview string `json:"preview,omitempty"`
}

// BatchSummary aggregates a batch response.
type BatchSummary struct {
	Docs        int `json:"docs"`
	OK          int `json:"ok"`
	Degraded    int `json:"degraded"`
	Quarantined int `json:"quarantined"`
	BadLines    int `json:"bad_lines"`
}

// BatchResponse is the /v1/score/batch reply. Results preserve the
// input order of the accepted documents.
type BatchResponse struct {
	Results     []ScoreResult    `json:"results"`
	Quarantined []BatchLineError `json:"quarantined_lines,omitempty"`
	Summary     BatchSummary     `json:"summary"`
}

// errorBody is the JSON error envelope for non-2xx responses.
type errorBody struct {
	Error string `json:"error"`
}

// routes registers the scoring endpoints and, with metrics configured,
// the obshttp observability surface on the same mux.
func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/score", s.instrument("score", s.handleScore))
	s.mux.HandleFunc("POST /v1/score/batch", s.instrument("batch", s.handleBatch))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.instrument("readyz", s.handleReadyz))
	if s.cfg.Feedback != nil {
		s.mux.HandleFunc("POST /v1/feedback", s.instrument("feedback", s.handleFeedback))
	}
	if s.cfg.Admin != nil {
		s.mux.Handle("/v1/admin/", http.StripPrefix("/v1/admin", s.cfg.Admin))
	}
	if s.cfg.Metrics != nil {
		h := obshttp.Handler(s.cfg.Metrics)
		s.mux.Handle("GET /metrics", h)
		s.mux.Handle("GET /metrics.json", h)
		s.mux.Handle("/debug/pprof/", h)
	}
}

// statusWriter captures the response code for the request metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request count and latency metrics.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	if s.m == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.m.observeRequest(route, sw.code, time.Since(t0))
	}
}

// requestCtx layers the server's per-request deadline onto the
// client's own context (cancelled when the client disconnects).
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
}

// readBody reads at most MaxBodyBytes; ok=false means the response has
// been written.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) (body []byte, ok bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading request body: "+err.Error())
		return nil, false
	}
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			"request body exceeds "+strconv.FormatInt(s.cfg.MaxBodyBytes, 10)+" bytes")
		return nil, false
	}
	return body, true
}

// retryAfter stamps the Retry-After hint on a 429/503 response.
func (s *Server) retryAfter(w http.ResponseWriter) {
	retry := int(s.cfg.RetryAfter / time.Second)
	if retry < 1 {
		retry = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(retry))
}

// reject answers an unadmitted request: 503 while draining, 429 on
// overload, both with a Retry-After hint.
func (s *Server) reject(w http.ResponseWriter, draining bool) {
	s.retryAfter(w)
	if draining {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	s.m.shedRequest()
	writeError(w, http.StatusTooManyRequests, "server overloaded: retry later")
}

// rejectDispatch answers a request whose documents could not be routed:
// 429 when healthy shards exist but their queues are full, 503 when no
// shard is accepting traffic.
func (s *Server) rejectDispatch(w http.ResponseWriter, st dispatchStatus) {
	s.retryAfter(w)
	if st == dispatchUnavailable {
		writeError(w, http.StatusServiceUnavailable, "no scoring shard available: retry later")
		return
	}
	s.m.shedRequest()
	writeError(w, http.StatusTooManyRequests, "server overloaded: retry later")
}

// healthBody is the healthz/readyz 200 payload: liveness/readiness
// plus the identity of the model currently admitting traffic.
type healthBody struct {
	Status          string `json:"status"`
	ModelGeneration uint64 `json:"model_generation"`
	TrainingSeed    uint64 `json:"training_seed"`
}

func (s *Server) health(status string) healthBody {
	hb := healthBody{Status: status}
	if mdl := s.model.Load(); mdl != nil {
		hb.ModelGeneration = mdl.Generation
		hb.TrainingSeed = mdl.Seed
	}
	return hb
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.health("ok"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.Stats().Draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if !s.ready() {
		st := s.Stats()
		http.Error(w, "degraded: "+strconv.Itoa(st.HealthyShards)+"/"+
			strconv.Itoa(len(st.Shards))+" shards healthy", http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, http.StatusOK, s.health("ready"))
}

// handleFeedback accepts a JSON array of operator-labelled documents
// and hands it to the configured FeedbackSink (the retrain loop).
func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var items []FeedbackItem
	if err := json.Unmarshal(body, &items); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	accepted := items[:0]
	for _, it := range items {
		if strings.TrimSpace(it.Text) == "" {
			continue
		}
		accepted = append(accepted, it)
	}
	if len(accepted) == 0 {
		writeError(w, http.StatusBadRequest, "no feedback items with text")
		return
	}
	if err := s.cfg.Feedback.AddFeedback(accepted); err != nil {
		writeError(w, http.StatusServiceUnavailable, "feedback rejected: "+err.Error())
		return
	}
	s.m.feedback(len(accepted))
	writeJSON(w, http.StatusAccepted, map[string]int{"accepted": len(accepted)})
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req ScoreRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if strings.TrimSpace(req.Text) == "" {
		writeError(w, http.StatusBadRequest, "missing text")
		return
	}
	if ok, draining := s.admitRequest(); !ok {
		s.reject(w, draining)
		return
	}
	defer s.releaseRequest()

	reply := make(chan scored, 1)
	if st := s.enqueue([]core.StreamDoc{{Platform: req.Platform, Text: req.Text}}, []string{req.ID}, reply); st != dispatchOK {
		s.rejectDispatch(w, st)
		return
	}

	ctx, cancel := s.requestCtx(r)
	defer cancel()
	select {
	case sc := <-reply:
		if sc.res.Dead != nil && errors.Is(sc.res.Dead.Err, errShardLost) {
			// The shard died and the single redispatch could not
			// re-home the document: terminal, but retryable upstream.
			s.retryAfter(w)
			writeError(w, http.StatusServiceUnavailable, "scoring shard lost: retry later")
			return
		}
		if sc.gen != 0 {
			w.Header().Set("X-Model-Generation", strconv.FormatUint(sc.gen, 10))
		}
		writeJSON(w, http.StatusOK, toScoreResult(sc))
	case <-ctx.Done():
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded before scoring completed")
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	docs, userIDs, quarantined, perr := s.parseBatch(body)
	if perr != "" {
		writeError(w, http.StatusBadRequest, perr)
		return
	}
	if len(docs) > s.cfg.MaxBatchDocs {
		writeError(w, http.StatusRequestEntityTooLarge,
			"batch of "+strconv.Itoa(len(docs))+" documents exceeds limit "+strconv.Itoa(s.cfg.MaxBatchDocs))
		return
	}
	if len(docs) == 0 && len(quarantined) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	resp := BatchResponse{
		Results:     []ScoreResult{},
		Quarantined: quarantined,
		Summary:     BatchSummary{Docs: len(docs), BadLines: len(quarantined)},
	}
	if len(docs) == 0 {
		// Nothing admissible: report the quarantined lines without
		// charging the queue.
		writeJSON(w, http.StatusOK, resp)
		return
	}
	if ok, draining := s.admitRequest(); !ok {
		s.reject(w, draining)
		return
	}
	defer s.releaseRequest()
	s.m.observeBatch(len(docs))

	reply := make(chan scored, len(docs))
	if st := s.enqueue(docs, userIDs, reply); st != dispatchOK {
		s.rejectDispatch(w, st)
		return
	}

	ctx, cancel := s.requestCtx(r)
	defer cancel()
	results := make([]ScoreResult, len(docs))
	for received := 0; received < len(docs); received++ {
		select {
		case sc := <-reply:
			results[sc.res.Index] = toScoreResult(sc)
		case <-ctx.Done():
			writeError(w, http.StatusGatewayTimeout, "deadline exceeded with "+
				strconv.Itoa(len(docs)-received)+" of "+strconv.Itoa(len(docs))+" documents unscored")
			return
		}
	}
	resp.Results = results
	for i := range results {
		switch results[i].Status {
		case resilience.StatusOK.String():
			resp.Summary.OK++
		case resilience.StatusDegraded.String():
			resp.Summary.Degraded++
		default:
			resp.Summary.Quarantined++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseBatch decodes a batch body: a JSON array of score requests when
// the payload starts with '[', otherwise lenient JSONL with per-line
// quarantine (one JSON document per line — the cmd/corpusgen
// interchange format). perr non-empty means the whole body is
// unusable.
func (s *Server) parseBatch(body []byte) (docs []core.StreamDoc, userIDs []string, quarantined []BatchLineError, perr string) {
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var reqs []ScoreRequest
		if err := json.Unmarshal(body, &reqs); err != nil {
			return nil, nil, nil, "invalid JSON array: " + err.Error()
		}
		for i, req := range reqs {
			if strings.TrimSpace(req.Text) == "" {
				quarantined = append(quarantined, BatchLineError{Line: i + 1, Error: "missing text"})
				continue
			}
			docs = append(docs, core.StreamDoc{Platform: req.Platform, Text: req.Text})
			userIDs = append(userIDs, req.ID)
		}
		return docs, userIDs, quarantined, ""
	}

	parsed, bad, err := corpus.ReadJSONLOpts(bytes.NewReader(body),
		corpus.JSONLOptions{Lenient: true, MaxLineBytes: s.cfg.MaxLineBytes})
	if err != nil {
		return nil, nil, nil, "reading JSONL body: " + err.Error()
	}
	for _, le := range bad {
		quarantined = append(quarantined, BatchLineError{Line: le.Line, Error: le.Err.Error(), Preview: le.Preview})
	}
	for i := range parsed {
		docs = append(docs, core.StreamDoc{Platform: string(parsed[i].Platform), Text: parsed[i].Text})
		userIDs = append(userIDs, parsed[i].ID)
	}
	return docs, userIDs, quarantined, ""
}

// toScoreResult converts a stamped stream result to the wire form.
func toScoreResult(sc scored) ScoreResult {
	res := sc.res
	out := ScoreResult{
		ID:        res.Item.ID,
		Status:    res.Status.String(),
		CTH:       res.Item.CTH,
		Dox:       res.Item.Dox,
		PII:       res.Item.PII,
		Attacks:   res.Item.Attacks,
		SeedQuery: res.Item.SeedQuery,
		Degraded:  res.Degraded,
		ModelGen:  sc.gen,
	}
	if res.Dead != nil {
		out.Error = res.Dead.Err.Error()
		out.CTH, out.Dox = 0, 0
		out.ModelGen = 0
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone is not actionable
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}
