package serve

// Hot-swap certification, run under -race by check.sh: a seeded swap
// storm between two model generations under concurrent load and shard
// panics loses zero requests, and every 200 response is scored wholly
// by a single generation — its (CTH, Dox) pair equals that
// generation's pure golden function and the stamped model_generation
// names it. A response mixing generations would match neither golden
// pair.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"harassrepro/internal/core"
	"harassrepro/internal/obs"
	"harassrepro/internal/resilience"
	"harassrepro/internal/resilience/chaos"
)

// genScore is the deterministic per-generation golden function: two
// generations score the same text differently, so which model scored a
// document is recoverable from the response alone.
func genScore(gen uint64, text string) (cth, dox float64) {
	h := 14695981039346656037 + gen*0x9e3779b97f4a7c15
	for i := 0; i < len(text); i++ {
		h ^= uint64(text[i])
		h *= 1099511628211 + gen
	}
	return float64(h%1000) / 1000, float64(h%97) / 97
}

// genBackend scores every document with genScore(gen, text) on a real
// resilience runner, one fake versioned model artifact per generation.
type genBackend struct {
	gen   uint64
	delay time.Duration
}

func (g *genBackend) ScoreStream(ctx context.Context, in <-chan core.StreamDoc, opts core.StreamOptions) <-chan resilience.Result[core.StreamDoc] {
	stage := resilience.Stage[core.StreamDoc]{
		Name: "gen-score",
		Fn: func(ctx context.Context, _ int, sd *core.StreamDoc) error {
			if g.delay > 0 {
				select {
				case <-time.After(g.delay):
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			sd.CTH, sd.Dox = genScore(g.gen, sd.Text)
			return nil
		},
	}
	return resilience.NewRunner(resilience.Config[core.StreamDoc]{
		Workers: opts.Workers,
		Seed:    opts.Seed,
		Metrics: opts.Metrics,
	}, stage).Process(ctx, in)
}

func TestHotSwapStormNoLossNoTornReads(t *testing.T) {
	before := runtime.NumGoroutine()

	reg := obs.NewRegistry()
	plan := &chaos.ServePlan{
		Seed:      13,
		PanicRate: 0.2,
		Targets:   map[int]bool{0: true},
		MaxFaults: 25,
	}
	m1 := &Model{Backend: &genBackend{gen: 1}, Generation: 1, Seed: 101}
	m2 := &Model{Backend: &genBackend{gen: 2}, Generation: 2, Seed: 202}
	s := New(Config{
		Model:              m1,
		Shards:             3,
		Workers:            3,
		QueueDepth:         96,
		BreakerThreshold:   2,
		BreakerOpenTimeout: 50 * time.Millisecond,
		StallTimeout:       500 * time.Millisecond,
		RestartBackoff:     resilience.RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		RequestTimeout:     10 * time.Second,
		Faults:             plan,
		Metrics:            reg,
	})
	ts := newHTTPFront(t, s)

	// Swap storm: alternate the two generations for the whole load run.
	stopSwaps := make(chan struct{})
	swapsDone := make(chan struct{})
	go func() {
		defer close(swapsDone)
		models := [2]*Model{m2, m1}
		for i := 0; ; i++ {
			select {
			case <-stopSwaps:
				return
			default:
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := s.SwapModel(ctx, models[i%2]); err != nil {
				t.Errorf("swap %d: %v", i, err)
			}
			cancel()
			time.Sleep(5 * time.Millisecond)
		}
	}()

	const clients, perClient = 8, 40
	var (
		sent      atomic.Int64
		okCount   atomic.Int64
		lostCount atomic.Int64
		genSeen   [3]atomic.Int64
		mu        sync.Mutex
		bad       []string
	)
	post := func(client, n int) {
		text := fmt.Sprintf("swap-storm doc %d-%d", client, n)
		sent.Add(1)
		resp, err := ts.Client().Post(ts.URL+"/v1/score", "application/json",
			strings.NewReader(fmt.Sprintf(`{"id":"c%d-%d","text":%q}`, client, n, text)))
		if err != nil {
			mu.Lock()
			bad = append(bad, fmt.Sprintf("req %d-%d: transport error %v", client, n, err))
			mu.Unlock()
			return
		}
		var res ScoreResult
		derr := json.NewDecoder(resp.Body).Decode(&res)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			if derr != nil {
				t.Errorf("req %d-%d: bad body: %v", client, n, derr)
				return
			}
			// Torn-read check: the response must equal exactly the
			// stamped generation's golden pair — a document half-scored
			// by each model could match neither.
			if res.ModelGen != 1 && res.ModelGen != 2 {
				mu.Lock()
				bad = append(bad, fmt.Sprintf("req %d-%d: model_generation = %d", client, n, res.ModelGen))
				mu.Unlock()
				return
			}
			wantCTH, wantDox := genScore(res.ModelGen, text)
			if res.CTH != wantCTH || res.Dox != wantDox {
				mu.Lock()
				bad = append(bad, fmt.Sprintf("req %d-%d: scores (%v,%v) != generation %d golden (%v,%v)",
					client, n, res.CTH, res.Dox, res.ModelGen, wantCTH, wantDox))
				mu.Unlock()
				return
			}
			if hdr := resp.Header.Get("X-Model-Generation"); hdr != strconv.FormatUint(res.ModelGen, 10) {
				mu.Lock()
				bad = append(bad, fmt.Sprintf("req %d-%d: header generation %q != body %d", client, n, hdr, res.ModelGen))
				mu.Unlock()
				return
			}
			genSeen[res.ModelGen].Add(1)
			okCount.Add(1)
		case http.StatusServiceUnavailable:
			if resp.Header.Get("Retry-After") == "" {
				mu.Lock()
				bad = append(bad, fmt.Sprintf("req %d-%d: 503 without Retry-After", client, n))
				mu.Unlock()
				return
			}
			lostCount.Add(1)
		default:
			mu.Lock()
			bad = append(bad, fmt.Sprintf("req %d-%d: unexpected status %d", client, n, resp.StatusCode))
			mu.Unlock()
		}
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			for n := 0; n < perClient; n++ {
				post(client, n)
			}
		}(c)
	}
	wg.Wait()
	close(stopSwaps)
	<-swapsDone
	for _, b := range bad {
		t.Error(b)
	}

	// Zero lost requests: exactly one terminal answer each.
	if got := okCount.Load() + lostCount.Load(); got != sent.Load() {
		t.Errorf("answers = %d (ok %d + lost %d), want %d", got, okCount.Load(), lostCount.Load(), sent.Load())
	}
	// The storm actually interleaved: both generations served traffic
	// and the chaos plan fired.
	if genSeen[1].Load() == 0 || genSeen[2].Load() == 0 {
		t.Errorf("generation mix = gen1:%d gen2:%d, want both > 0", genSeen[1].Load(), genSeen[2].Load())
	}
	if plan.Disrupted() == 0 {
		t.Error("chaos plan never fired during the storm")
	}

	// Converge the fleet on generation 2 and prove new admissions use
	// it: SwapModel returns only after every shard rotated.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := s.SwapModel(ctx, m2); err != nil {
		t.Fatalf("final swap: %v", err)
	}
	cancel()
	if got := s.ActiveModel().Generation; got != 2 {
		t.Fatalf("ActiveModel().Generation = %d, want 2", got)
	}
	text := "post-storm convergence probe"
	code, body, _ := postJSON(t, ts.Client(), ts.URL+"/v1/score", fmt.Sprintf(`{"text":%q}`, text))
	if code != http.StatusOK {
		t.Fatalf("post-storm score = %d body %s", code, body)
	}
	var res ScoreResult
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if c2, d2 := genScore(2, text); res.ModelGen != 2 || res.CTH != c2 || res.Dox != d2 {
		t.Errorf("post-storm response = gen %d (%v,%v), want gen 2 (%v,%v)", res.ModelGen, res.CTH, res.Dox, c2, d2)
	}

	// Swap accounting: the gauge names the active generation and every
	// completed storm swap was counted exactly once.
	snap := reg.Snapshot()
	if gen := snap.CounterValue("serve_model_generation"); gen != 2 {
		t.Errorf("serve_model_generation = %v, want 2", gen)
	}
	if swaps := snap.CounterValue("serve_model_swaps_total"); swaps < 3 {
		t.Errorf("serve_model_swaps_total = %v, want a storm (>= 3)", swaps)
	}

	// Queue accounting converged.
	st := s.Stats()
	if st.Queued != 0 || st.InFlight != 0 {
		t.Errorf("post-storm stats = %+v, want drained", st)
	}

	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	ts.Close()
	waitForGoroutines(t, before)
}

func TestSwapModelIdempotentUnderConcurrency(t *testing.T) {
	reg := obs.NewRegistry()
	m1 := &Model{Backend: &genBackend{gen: 1}, Generation: 1}
	m2 := &Model{Backend: &genBackend{gen: 2}, Generation: 2}
	s := New(Config{Model: m1, Shards: 2, Workers: 2, Metrics: reg})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	}()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := s.SwapModel(ctx, m2); err != nil {
				t.Errorf("SwapModel: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := s.ActiveModel().Generation; got != 2 {
		t.Fatalf("generation = %d, want 2", got)
	}
	// Four racing swaps to the same generation apply exactly once.
	if swaps := reg.Snapshot().CounterValue("serve_model_swaps_total"); swaps != 1 {
		t.Errorf("serve_model_swaps_total = %v, want 1", swaps)
	}
	if err := s.SwapModel(context.Background(), nil); err == nil {
		t.Error("SwapModel(nil) accepted")
	}
}

// fixedThresholds is a Thresholder with one global threshold pair.
type fixedThresholds struct{ cth, dox float64 }

func (f fixedThresholds) CTHThreshold(string) float64 { return f.cth }
func (f fixedThresholds) DoxThreshold(string) float64 { return f.dox }

func TestShadowScoringDivergenceAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	m1 := &Model{Backend: &genBackend{gen: 1}, Generation: 1, Thresholds: fixedThresholds{0.5, 0.5}}
	m2 := &Model{Backend: &genBackend{gen: 2}, Generation: 2, Thresholds: fixedThresholds{0.5, 0.5}}
	s := New(Config{Model: m1, Shards: 2, Workers: 2, Metrics: reg})
	ts := newHTTPFront(t, s)
	defer shutdownServer(t, s, ts)

	if err := s.SetShadow(nil, 1); err == nil {
		t.Fatal("SetShadow(nil) accepted")
	}
	if err := s.SetShadow(m2, 1.0); err != nil {
		t.Fatal(err)
	}

	const docs = 40
	flips, maxDelta := 0, 0.0
	for i := 0; i < docs; i++ {
		text := fmt.Sprintf("shadow sample %d", i)
		code, body, _ := postJSON(t, ts.Client(), ts.URL+"/v1/score", fmt.Sprintf(`{"text":%q}`, text))
		if code != http.StatusOK {
			t.Fatalf("doc %d: status %d body %s", i, code, body)
		}
		// Expected divergence from the pure golden functions.
		c1, d1 := genScore(1, text)
		c2, d2 := genScore(2, text)
		if (c1 >= 0.5) != (c2 >= 0.5) || (d1 >= 0.5) != (d2 >= 0.5) {
			flips++
		}
		delta := c1 - c2
		if delta < 0 {
			delta = -delta
		}
		if dd := d1 - d2; dd > delta {
			delta = dd
		} else if -dd > delta {
			delta = -dd
		}
		if delta > maxDelta {
			maxDelta = delta
		}
	}
	// Rate 1.0 samples everything; wait for the async worker to drain.
	var st ShadowStats
	waitFor(t, 5*time.Second, func() bool {
		var ok bool
		st, ok = s.ShadowStats()
		return ok && st.Docs+st.Dropped >= docs
	})
	if st.Generation != 2 {
		t.Errorf("shadow generation = %d, want 2", st.Generation)
	}
	if st.Docs == 0 {
		t.Fatalf("shadow scored nothing: %+v", st)
	}
	if st.MeanDelta <= 0 || st.MaxDelta <= 0 || st.MaxDelta > maxDelta+1e-9 {
		t.Errorf("deltas = mean %v max %v (offline max %v), want positive and bounded", st.MeanDelta, st.MaxDelta, maxDelta)
	}
	if flips > 0 && st.Dropped == 0 && int(st.LabelFlips) > flips {
		t.Errorf("label flips = %d, offline bound %d", st.LabelFlips, flips)
	}
	snap := reg.Snapshot()
	if got := snap.CounterValue("serve_shadow_docs_total"); got != float64(st.Docs) {
		t.Errorf("serve_shadow_docs_total = %v, stats %d", got, st.Docs)
	}

	s.ClearShadow()
	if _, ok := s.ShadowStats(); ok {
		t.Error("ShadowStats still active after ClearShadow")
	}
}

// captureSink records feedback batches.
type captureSink struct {
	mu    sync.Mutex
	items []FeedbackItem
}

func (c *captureSink) AddFeedback(items []FeedbackItem) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.items = append(c.items, items...)
	return nil
}

func TestFeedbackEndpoint(t *testing.T) {
	sink := &captureSink{}
	reg := obs.NewRegistry()
	s := New(Config{Backend: &genBackend{gen: 1}, Shards: 1, Workers: 1, Feedback: sink, Metrics: reg})
	ts := newHTTPFront(t, s)
	defer shutdownServer(t, s, ts)

	code, body, _ := postJSON(t, ts.Client(), ts.URL+"/v1/feedback",
		`[{"platform":"boards","text":"go after this user","task":"cth","label":true,"generation":1},
		  {"text":"   ","label":false},
		  {"platform":"video","text":"benign clip comment","label":false}]`)
	if code != http.StatusAccepted {
		t.Fatalf("status = %d body %s, want 202", code, body)
	}
	if !strings.Contains(body, `"accepted":2`) {
		t.Errorf("body = %s, want accepted:2 (blank text dropped)", body)
	}
	sink.mu.Lock()
	n := len(sink.items)
	first := FeedbackItem{}
	if n > 0 {
		first = sink.items[0]
	}
	sink.mu.Unlock()
	if n != 2 || first.Platform != "boards" || !first.Label || first.Generation != 1 {
		t.Errorf("sink got %d items, first %+v", n, first)
	}
	if got := reg.Snapshot().CounterValue("serve_feedback_total"); got != 2 {
		t.Errorf("serve_feedback_total = %v, want 2", got)
	}

	for _, bad := range []string{`not json`, `[]`, `[{"text":""}]`} {
		code, _, _ := postJSON(t, ts.Client(), ts.URL+"/v1/feedback", bad)
		if code != http.StatusBadRequest {
			t.Errorf("feedback %q = %d, want 400", bad, code)
		}
	}
}

func TestHealthzReportsModelIdentity(t *testing.T) {
	m := &Model{Backend: &genBackend{gen: 3}, Generation: 3, Seed: 77}
	s := New(Config{Model: m, Shards: 1, Workers: 1})
	ts := newHTTPFront(t, s)
	defer shutdownServer(t, s, ts)

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var hb healthBody
		derr := json.NewDecoder(resp.Body).Decode(&hb)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || derr != nil {
			t.Fatalf("%s = %d (%v)", path, resp.StatusCode, derr)
		}
		if hb.ModelGeneration != 3 || hb.TrainingSeed != 77 {
			t.Errorf("%s body = %+v, want generation 3 seed 77", path, hb)
		}
	}
}
