// Package threshold implements the paper's threshold-selection procedure
// (§5.5): starting from the standard 0.5 threshold, a random sample of
// documents scoring above the candidate threshold is manually annotated
// to estimate precision; the threshold is raised while precision is too
// low to support manual annotation, and once precision is sufficiently
// high, a step back down is probed — if precision holds, the lower
// threshold is kept to protect recall.
package threshold

import (
	"errors"
	"sort"

	"harassrepro/internal/annotate"
	"harassrepro/internal/randx"
)

// ErrNoCandidates is returned when no documents score above the starting
// threshold.
var ErrNoCandidates = errors.New("threshold: no documents above starting threshold")

// ScoredDoc is a classifier-scored document.
type ScoredDoc struct {
	ID    string
	Score float64
	// Truth is the hidden ground truth consulted by the simulated
	// expert annotators who estimate precision.
	Truth bool
}

// Config controls the search.
type Config struct {
	// Start is the initial threshold. Defaults to 0.5 ("the standard
	// threshold").
	Start float64
	// Ladder is the ordered set of candidate thresholds explored when
	// raising. Defaults to the paper's observed operating points.
	Ladder []float64
	// TargetPrecision is the precision at which raising stops.
	// Defaults to 0.75.
	TargetPrecision float64
	// HoldTolerance is how much precision may drop at the probed lower
	// threshold while still keeping it. Defaults to 0.05.
	HoldTolerance float64
	// SampleSize is the number of above-threshold documents annotated
	// per evaluation. Defaults to 300.
	SampleSize int
	// Seed drives sampling.
	Seed uint64
}

func (c *Config) fillDefaults() {
	if c.Start == 0 {
		c.Start = 0.5
	}
	if len(c.Ladder) == 0 {
		c.Ladder = []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.935, 0.96, 0.98}
	}
	if c.TargetPrecision == 0 {
		c.TargetPrecision = 0.75
	}
	if c.HoldTolerance == 0 {
		c.HoldTolerance = 0.05
	}
	if c.SampleSize <= 0 {
		c.SampleSize = 300
	}
}

// Evaluation is one manual-annotation precision estimate.
type Evaluation struct {
	Threshold      float64
	AboveThreshold int
	Annotated      int
	TruePositives  int
	Precision      float64
}

// Selection is the procedure outcome.
type Selection struct {
	Threshold      float64
	Precision      float64
	AboveThreshold int
	Trail          []Evaluation
}

// Annotator estimates labels for a batch of items. *annotate.Pool
// satisfies it; tests substitute deterministic fakes.
type Annotator interface {
	Annotate(items []annotate.Item) ([]annotate.Decision, annotate.Stats, error)
}

// Select runs the §5.5 procedure over scored documents using the expert
// annotator pool to estimate precision at each candidate threshold.
//
// The docs slice is snapshotted on entry: selection is pinned to the
// scores it was handed even if the caller's slice is re-scored by a
// newer model generation mid-search, so every evaluation in the trail
// reads one generation's scores.
func Select(docs []ScoredDoc, experts Annotator, cfg Config) (Selection, error) {
	cfg.fillDefaults()
	docs = append([]ScoredDoc(nil), docs...)
	rng := randx.New(cfg.Seed).Split("threshold")

	evaluate := func(t float64) (Evaluation, error) {
		var above []ScoredDoc
		for _, d := range docs {
			if d.Score > t {
				above = append(above, d)
			}
		}
		ev := Evaluation{Threshold: t, AboveThreshold: len(above)}
		if len(above) == 0 {
			return ev, nil
		}
		sample := above
		if len(sample) > cfg.SampleSize {
			cp := append([]ScoredDoc(nil), above...)
			randx.Shuffle(rng, cp)
			sample = cp[:cfg.SampleSize]
		}
		items := make([]annotate.Item, len(sample))
		for i, d := range sample {
			items[i] = annotate.Item{ID: d.ID, Truth: d.Truth}
		}
		decisions, _, err := experts.Annotate(items)
		if err != nil {
			return ev, err
		}
		for _, d := range decisions {
			if d.Label {
				ev.TruePositives++
			}
		}
		ev.Annotated = len(items)
		ev.Precision = float64(ev.TruePositives) / float64(len(items))
		return ev, nil
	}

	// Ladder positions at or above the start.
	ladder := append([]float64(nil), cfg.Ladder...)
	sort.Float64s(ladder)
	startIdx := 0
	for i, t := range ladder {
		if t >= cfg.Start {
			startIdx = i
			break
		}
	}

	var trail []Evaluation
	chosenIdx := -1
	for i := startIdx; i < len(ladder); i++ {
		ev, err := evaluate(ladder[i])
		if err != nil {
			return Selection{}, err
		}
		trail = append(trail, ev)
		if ev.AboveThreshold == 0 {
			break
		}
		if ev.Precision >= cfg.TargetPrecision {
			chosenIdx = i
			break
		}
	}
	if len(trail) == 0 || trail[0].AboveThreshold == 0 {
		return Selection{}, ErrNoCandidates
	}
	if chosenIdx == -1 {
		// Precision never reached the target; keep the highest evaluated
		// threshold that still has candidates.
		best := trail[0]
		for _, ev := range trail {
			if ev.AboveThreshold > 0 && ev.Precision >= best.Precision {
				best = ev
			}
		}
		return Selection{Threshold: best.Threshold, Precision: best.Precision, AboveThreshold: best.AboveThreshold, Trail: trail}, nil
	}

	chosen := trail[len(trail)-1]
	// Probe one step down: if precision holds (within tolerance), keep
	// the lower threshold for recall.
	if chosenIdx > startIdx {
		lower, err := evaluate(ladder[chosenIdx-1])
		if err != nil {
			return Selection{}, err
		}
		trail = append(trail, lower)
		if lower.Precision >= chosen.Precision-cfg.HoldTolerance {
			chosen = lower
		}
	}
	return Selection{
		Threshold:      chosen.Threshold,
		Precision:      chosen.Precision,
		AboveThreshold: chosen.AboveThreshold,
		Trail:          trail,
	}, nil
}

// CountAbove returns how many documents score above t.
func CountAbove(docs []ScoredDoc, t float64) int {
	n := 0
	for _, d := range docs {
		if d.Score > t {
			n++
		}
	}
	return n
}
