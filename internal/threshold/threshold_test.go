package threshold

import (
	"fmt"
	"testing"

	"harassrepro/internal/annotate"
	"harassrepro/internal/randx"
)

// makeScored builds a scored pool where the score distribution is
// informative: positives cluster high, negatives low, with a noisy band
// of false positives whose density decays with score.
func makeScored(n int, posRate float64, noise float64, seed uint64) []ScoredDoc {
	rng := randx.New(seed)
	docs := make([]ScoredDoc, n)
	for i := range docs {
		truth := rng.Bool(posRate)
		var score float64
		if truth {
			score = 0.6 + 0.4*rng.Float64()
		} else {
			// Most negatives score low; a slice bleeds upward.
			if rng.Bool(noise) {
				score = 0.5 + 0.45*rng.Float64()
			} else {
				score = 0.5 * rng.Float64()
			}
		}
		docs[i] = ScoredDoc{ID: fmt.Sprintf("d-%05d", i), Score: score, Truth: truth}
	}
	return docs
}

func expertPool(seed uint64) *annotate.Pool {
	return annotate.NewPool(annotate.ExpertConfig(annotate.TaskDox), randx.New(seed))
}

func TestSelectStopsAtPreciseThreshold(t *testing.T) {
	docs := makeScored(20000, 0.05, 0.02, 1)
	sel, err := Select(docs, expertPool(2), Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Precision < 0.6 {
		t.Errorf("selected precision = %.3f", sel.Precision)
	}
	if sel.AboveThreshold == 0 {
		t.Error("no documents above selected threshold")
	}
	if len(sel.Trail) == 0 {
		t.Error("no evaluation trail")
	}
	// The selected threshold must be one of the ladder values.
	found := false
	for _, lt := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.935, 0.96, 0.98} {
		if sel.Threshold == lt {
			found = true
		}
	}
	if !found {
		t.Errorf("threshold %v not on ladder", sel.Threshold)
	}
}

func TestSelectRaisesOnNoisyScores(t *testing.T) {
	// Heavy false-positive bleed: precision at 0.5 is low, so the
	// procedure must climb.
	noisy := makeScored(20000, 0.02, 0.30, 4)
	selNoisy, err := Select(noisy, expertPool(5), Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	clean := makeScored(20000, 0.02, 0.005, 7)
	selClean, err := Select(clean, expertPool(8), Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if selNoisy.Threshold <= selClean.Threshold {
		t.Errorf("noisy threshold %v should exceed clean threshold %v",
			selNoisy.Threshold, selClean.Threshold)
	}
}

func TestSelectProbesDownForRecall(t *testing.T) {
	// Clean scores: precision is high everywhere above 0.5, so after
	// reaching the target the down-probe should keep the lower
	// threshold (recall priority).
	clean := makeScored(10000, 0.05, 0.002, 10)
	sel, err := Select(clean, expertPool(11), Config{Start: 0.6, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Threshold > 0.6 {
		t.Errorf("threshold = %v; clean scores should keep the low threshold", sel.Threshold)
	}
}

func TestSelectNeverReachesTarget(t *testing.T) {
	// All negatives: precision stays ~0 everywhere; Select returns the
	// best achievable rather than failing.
	rng := randx.New(13)
	docs := make([]ScoredDoc, 2000)
	for i := range docs {
		docs[i] = ScoredDoc{ID: fmt.Sprintf("n-%d", i), Score: rng.Float64(), Truth: false}
	}
	sel, err := Select(docs, expertPool(14), Config{Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Precision > 0.2 {
		t.Errorf("precision = %v on all-negative pool", sel.Precision)
	}
}

func TestSelectNoCandidates(t *testing.T) {
	docs := []ScoredDoc{{ID: "a", Score: 0.1}, {ID: "b", Score: 0.2}}
	if _, err := Select(docs, expertPool(16), Config{Seed: 17}); err != ErrNoCandidates {
		t.Errorf("err = %v, want ErrNoCandidates", err)
	}
}

func TestSelectDeterministic(t *testing.T) {
	run := func() Selection {
		docs := makeScored(5000, 0.05, 0.05, 18)
		sel, err := Select(docs, expertPool(19), Config{Seed: 20})
		if err != nil {
			t.Fatal(err)
		}
		return sel
	}
	a, b := run(), run()
	if a.Threshold != b.Threshold || a.Precision != b.Precision {
		t.Fatalf("selection differs: %+v vs %+v", a, b)
	}
}

// rescoringAnnotator wraps a real expert pool but, after its first
// batch, re-scores the caller's docs slice in place — simulating a
// model hot-swap landing mid-selection, where a shared candidate pool
// gets overwritten with the next generation's scores.
type rescoringAnnotator struct {
	inner   *annotate.Pool
	victim  []ScoredDoc
	rescore func(i int, d ScoredDoc) float64
	calls   int
}

func (r *rescoringAnnotator) Annotate(items []annotate.Item) ([]annotate.Decision, annotate.Stats, error) {
	r.calls++
	if r.calls == 1 {
		for i := range r.victim {
			r.victim[i].Score = r.rescore(i, r.victim[i])
		}
	}
	return r.inner.Annotate(items)
}

func TestSelectPinnedToOneGenerationMidRescore(t *testing.T) {
	// Generation A's scores drive a pure run; then the same selection
	// runs while generation B overwrites the shared slice after the
	// first precision estimate. Selection must be identical: it only
	// ever reads generation A's scores.
	genB := func(i int, d ScoredDoc) float64 {
		// A different, adversarial generation: inverted and shifted so
		// every ladder step sees a different candidate set.
		return 1 - 0.9*d.Score
	}

	pure := makeScored(8000, 0.04, 0.20, 21)
	want, err := Select(pure, expertPool(22), Config{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}

	shared := makeScored(8000, 0.04, 0.20, 21)
	ann := &rescoringAnnotator{inner: expertPool(22), victim: shared, rescore: genB}
	got, err := Select(shared, ann, Config{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if ann.calls < 2 {
		t.Fatalf("selection made %d annotation calls; need >= 2 for the mid-selection rescore to matter", ann.calls)
	}
	if got.Threshold != want.Threshold || got.Precision != want.Precision || got.AboveThreshold != want.AboveThreshold {
		t.Fatalf("selection read rescored generation: got %+v, want %+v", got, want)
	}
	if len(got.Trail) != len(want.Trail) {
		t.Fatalf("trail length differs: %d vs %d", len(got.Trail), len(want.Trail))
	}
	for i := range got.Trail {
		if got.Trail[i] != want.Trail[i] {
			t.Fatalf("trail[%d] differs: %+v vs %+v", i, got.Trail[i], want.Trail[i])
		}
	}
	// Sanity: generation B really did overwrite the shared slice.
	if shared[0].Score == pure[0].Score {
		t.Fatal("rescore never happened; test is vacuous")
	}
}

func TestCountAbove(t *testing.T) {
	docs := []ScoredDoc{{Score: 0.1}, {Score: 0.5}, {Score: 0.9}}
	if got := CountAbove(docs, 0.5); got != 1 {
		t.Errorf("CountAbove(0.5) = %d (strictly above)", got)
	}
	if got := CountAbove(docs, 0.05); got != 3 {
		t.Errorf("CountAbove(0.05) = %d", got)
	}
	if got := CountAbove(nil, 0.5); got != 0 {
		t.Errorf("CountAbove(nil) = %d", got)
	}
}

func BenchmarkSelect(b *testing.B) {
	docs := makeScored(10000, 0.05, 0.05, 1)
	for i := 0; i < b.N; i++ {
		Select(docs, expertPool(2), Config{Seed: 3})
	}
}
