// Package blogs implements the paper's qualitative blog analysis (§8):
// the distilBERT-style classifiers performed poorly on long blog entries,
// so the paper instead narrowed blogs with PII keyword queries ("phone",
// "email", "dox", "dob:"), manually annotated the resulting "relevant"
// posts, and profiled the harassment registers of far-right and
// antifascist blogs (Tables 8 and 9).
package blogs

import (
	"sort"
	"strings"

	"harassrepro/internal/annotate"
	"harassrepro/internal/corpus"
	"harassrepro/internal/randx"
)

// Keywords are the §8.1 relevance query terms.
func Keywords() []string { return []string{"phone", "email", "dox", "dob:"} }

// Relevant reports whether a blog entry matches the keyword query.
func Relevant(text string) bool {
	lower := strings.ToLower(text)
	for _, k := range Keywords() {
		if strings.Contains(lower, k) {
			return true
		}
	}
	return false
}

// BlogReport is one row of Table 8.
type BlogReport struct {
	Blog string
	// TotalPosts is the blog's entry count.
	TotalPosts int
	// RelevantPosts matched the keyword query.
	RelevantPosts int
	// ActualDoxes is the number of relevant posts confirmed as doxes by
	// (simulated) manual annotation.
	ActualDoxes int
	// DoxRate is ActualDoxes / RelevantPosts.
	DoxRate float64
	// MissedByKeywords counts actual doxes invisible to the keyword
	// query (the paper measured 10 of 33 on The Torch).
	MissedByKeywords int
	// TrueDoxes is the ground-truth dox count (MissedByKeywords +
	// keyword-visible true doxes), the denominator of the recall check.
	TrueDoxes int
}

// Analyze runs the §8.1 pipeline over the blog corpus: keyword filtering
// per blog, then manual annotation of the relevant posts by the expert
// pool. The keyword-recall evaluation (how many true doxes the query
// misses) uses ground truth, standing in for the paper's exhaustive
// manual pass over The Torch.
func Analyze(c *corpus.Corpus, experts *annotate.Pool, rng *randx.Source) ([]BlogReport, error) {
	byBlog := map[string][]*corpus.Document{}
	for i := range c.Docs {
		d := &c.Docs[i]
		byBlog[d.Domain] = append(byBlog[d.Domain], d)
	}
	blogNames := make([]string, 0, len(byBlog))
	for name := range byBlog {
		blogNames = append(blogNames, name)
	}
	sort.Strings(blogNames)

	var reports []BlogReport
	for _, name := range blogNames {
		docs := byBlog[name]
		rep := BlogReport{Blog: name, TotalPosts: len(docs)}

		var relevant []*corpus.Document
		for _, d := range docs {
			if d.Truth.IsDox {
				rep.TrueDoxes++
				if !Relevant(d.Text) {
					rep.MissedByKeywords++
				}
			}
			if Relevant(d.Text) {
				relevant = append(relevant, d)
			}
		}
		rep.RelevantPosts = len(relevant)

		// Manual annotation of the relevant set.
		items := make([]annotate.Item, len(relevant))
		for i, d := range relevant {
			items[i] = annotate.Item{ID: d.ID, Truth: d.Truth.IsDox}
		}
		decisions, _, err := experts.Annotate(items)
		if err != nil {
			return nil, err
		}
		for _, dec := range decisions {
			if dec.Label {
				rep.ActualDoxes++
			}
		}
		if rep.RelevantPosts > 0 {
			rep.DoxRate = float64(rep.ActualDoxes) / float64(rep.RelevantPosts)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// AttackProfile is one column of Table 9: the qualitative structure of
// attacks observed on a blog family.
type AttackProfile struct {
	Family   string
	Sections map[string][]string
	Order    []string
}

// Table9 returns the paper's Table 9 taxonomy of attacks in blogs as
// structured data: the antifascist (The Torch / NoBlogs) profile and the
// far-right (Daily Stormer) profile.
func Table9() []AttackProfile {
	return []AttackProfile{
		{
			Family: "The Torch/No Blogs",
			Order:  []string{"Doxing", "Public Reputational Harm", "Private Reputational Harm"},
			Sections: map[string][]string{
				"Doxing": {
					"Invites readers to provide additional information",
					"Includes narration of activities of the target, along with PII",
					"Photos from rallies and protests",
					"Includes facts related to the target's physical location",
				},
				"Public Reputational Harm": {
					"Distributing flyers/posters",
					"Alerting friends, neighbors, landlords",
				},
				"Private Reputational Harm": {
					"Alerting employer",
				},
			},
		},
		{
			Family: "Daily Stormer",
			Order:  []string{"Doxing", "Overloading", "Hate Speech"},
			Sections: map[string][]string{
				"Doxing": {
					"Often co-occurs with calls to overload",
					"Includes narration of activities of the target",
					"Contact information: Twitter handle or email",
				},
				"Overloading": {
					"Most common: raiding and spamming",
					"Raiding often contains hate speech",
				},
				"Hate Speech": {
					"In the form of meme campaigns",
					"In the form of hashtag hijacking",
				},
			},
		},
	}
}

// VerifyProfiles checks the generated blog corpus against the Table 9
// structure: antifascist doxes should carry addresses and reputational
// calls; far-right doxes should carry contact handles and overload
// calls. Returns the share of doxes matching their family profile.
func VerifyProfiles(c *corpus.Corpus) map[string]float64 {
	out := map[string]float64{}
	byBlog := map[string][]*corpus.Document{}
	for i := range c.Docs {
		d := &c.Docs[i]
		if d.Truth.IsDox {
			byBlog[d.Domain] = append(byBlog[d.Domain], d)
		}
	}
	for name, docs := range byBlog {
		matched := 0
		farRight := strings.Contains(name, "stormer")
		for _, d := range docs {
			lower := strings.ToLower(d.Text)
			if farRight {
				if strings.Contains(lower, "spam") || strings.Contains(lower, "twitter") || strings.Contains(lower, "email") {
					matched++
				}
			} else {
				if strings.Contains(lower, "lives at") || strings.Contains(lower, "landlord") || strings.Contains(lower, "employer") {
					matched++
				}
			}
		}
		if len(docs) > 0 {
			out[name] = float64(matched) / float64(len(docs))
		}
	}
	return out
}
