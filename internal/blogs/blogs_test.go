package blogs

import (
	"strings"
	"testing"

	"harassrepro/internal/annotate"
	"harassrepro/internal/corpus"
	"harassrepro/internal/randx"
)

func TestRelevant(t *testing.T) {
	positives := []string{
		"his phone number is listed",
		"contact by EMAIL only",
		"this is a dox of the organizer",
		"records show dob: 1990-01-01",
	}
	for _, p := range positives {
		if !Relevant(p) {
			t.Errorf("Relevant(%q) = false", p)
		}
	}
	if Relevant("a post about gardening") {
		t.Error("benign text relevant")
	}
}

func generateBlogs(t *testing.T, seed uint64) *corpus.Corpus {
	t.Helper()
	g := corpus.NewGenerator(corpus.Config{Seed: seed})
	return g.GenerateBlogs(corpus.DefaultBlogSpecs(10))
}

func TestAnalyzeTable8Shape(t *testing.T) {
	c := generateBlogs(t, 1)
	experts := annotate.NewPool(annotate.ExpertConfig(annotate.TaskDox), randx.New(2))
	reports, err := Analyze(c, experts, randx.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d, want 3", len(reports))
	}
	byName := map[string]BlogReport{}
	for _, r := range reports {
		byName[r.Blog] = r
	}
	torch := byName["torch-network.example"]
	if torch.TotalPosts != 93 {
		t.Errorf("torch total = %d, want 93", torch.TotalPosts)
	}
	// The keyword query misses 10 of the 33 torch doxes (§8.1).
	if torch.MissedByKeywords != 10 || torch.TrueDoxes != 33 {
		t.Errorf("torch keyword recall: missed %d of %d, want 10 of 33", torch.MissedByKeywords, torch.TrueDoxes)
	}
	// Dox rate ordering (Table 8): torch (60.5%) >> noblogs (9.8%) >
	// daily stormer (2.9%).
	ds := byName["daily-stormer.example"]
	nb := byName["noblogs.example"]
	if !(torch.DoxRate > nb.DoxRate && nb.DoxRate > ds.DoxRate) {
		t.Errorf("dox rates: torch %.3f, noblogs %.3f, ds %.3f; want torch > noblogs > ds",
			torch.DoxRate, nb.DoxRate, ds.DoxRate)
	}
	// Relevance filtering is a narrow funnel on the big blogs.
	if ds.RelevantPosts*2 > ds.TotalPosts {
		t.Errorf("daily stormer relevance not narrow: %d of %d", ds.RelevantPosts, ds.TotalPosts)
	}
}

func TestAnalyzeAnnotationAccuracy(t *testing.T) {
	c := generateBlogs(t, 5)
	experts := annotate.NewPool(annotate.ExpertConfig(annotate.TaskDox), randx.New(6))
	reports, err := Analyze(c, experts, randx.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		visible := r.TrueDoxes - r.MissedByKeywords
		// Expert annotation of the relevant pool should land near the
		// keyword-visible dox count.
		if visible > 0 {
			ratio := float64(r.ActualDoxes) / float64(visible)
			if ratio < 0.7 || ratio > 1.3 {
				t.Errorf("%s: annotated %d vs %d keyword-visible doxes", r.Blog, r.ActualDoxes, visible)
			}
		}
	}
}

func TestTable9Structure(t *testing.T) {
	profiles := Table9()
	if len(profiles) != 2 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	for _, p := range profiles {
		if len(p.Order) == 0 {
			t.Errorf("%s has no sections", p.Family)
		}
		for _, section := range p.Order {
			if len(p.Sections[section]) == 0 {
				t.Errorf("%s section %q empty", p.Family, section)
			}
		}
	}
	// The two profiles capture the §8 contrast: antifascist blogs call
	// for alerting employers; far-right blogs call for overloading.
	var torch, ds AttackProfile
	for _, p := range profiles {
		if strings.Contains(p.Family, "Torch") {
			torch = p
		} else {
			ds = p
		}
	}
	if _, ok := torch.Sections["Private Reputational Harm"]; !ok {
		t.Error("torch profile missing reputational harm")
	}
	if _, ok := ds.Sections["Overloading"]; !ok {
		t.Error("daily stormer profile missing overloading")
	}
}

func TestVerifyProfiles(t *testing.T) {
	c := generateBlogs(t, 9)
	shares := VerifyProfiles(c)
	if len(shares) != 3 {
		t.Fatalf("profile shares = %v", shares)
	}
	for name, share := range shares {
		if share < 0.6 {
			t.Errorf("%s: only %.2f of doxes match family profile", name, share)
		}
	}
}
