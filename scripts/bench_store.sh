#!/usr/bin/env bash
# Corpus-store benchmark harness: builds a quick-scale store in a temp
# directory, measures sequential and parallel scan throughput (MB/s),
# inverted-index lookup latency on the mmap and buffered read paths,
# incremental append throughput, a DefaultConfig-scale ingest+scan
# round trip, and the store-streamed vs in-memory ScoreStream
# comparison, and writes BENCH_store.json.
#
# The score-stream pair and the default-scale round trip need one-time
# setup runs (tens of seconds); pass -store-only to skip them and
# measure just the raw store entries. Gates (scripts/check.sh runs
# -gate, which enforces both):
#
#   -gate-stream    fail if store-streamed scoring drops below 0.9x
#                   in-memory throughput
#   -gate-parallel  fail if parallel scan drops below 2x sequential —
#                   enforced only on machines with >= 4 cores, loudly
#                   skipped on smaller ones
#
# Usage: scripts/bench_store.sh [-out FILE] [-store-only]
#                               [-gate-stream] [-gate-parallel] [-gate]
set -euo pipefail
cd "$(dirname "$0")/.."

go run ./cmd/benchstore "$@"
