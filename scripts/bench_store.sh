#!/usr/bin/env bash
# Corpus-store benchmark harness: builds a quick-scale store in a temp
# directory, measures sequential scan throughput (MB/s), inverted-index
# lookup latency, incremental append throughput, and the store-streamed
# vs in-memory ScoreStream comparison, and writes BENCH_store.json.
#
# The score-stream pair requires a one-time quick-scale training run
# (tens of seconds); pass -store-only to skip it and measure just the
# raw store entries. -gate-stream (used by scripts/check.sh) fails the
# run if store-streamed scoring drops below 0.9x in-memory throughput.
#
# Usage: scripts/bench_store.sh [-out FILE] [-store-only] [-gate-stream]
set -euo pipefail
cd "$(dirname "$0")/.."

go run ./cmd/benchstore "$@"
