#!/usr/bin/env bash
# Serving benchmark and lifecycle smoke: builds harassd and loadgen,
# starts harassd on an ephemeral port (training quick-scale classifiers
# at startup), drives it with concurrent clients, curl-smokes every
# endpoint, then SIGTERMs mid-idle and asserts a clean drain (exit 0).
#
# Two load phases land in BENCH_serve.json at the repo root:
#
#   healthy — the full shard fleet serving normally;
#   faulted — the same fleet with 1 of 4 shards continuously failing
#             under a seeded chaos plan, measuring the throughput and
#             p99 cost of riding through a persistent shard incident.
#
# Usage: scripts/bench_serve.sh [-clients N] [-duration D]
set -euo pipefail
cd "$(dirname "$0")/.."

clients=64
duration=5s
while [[ $# -gt 0 ]]; do
  case "$1" in
    -clients)  clients=$2; shift 2 ;;
    -duration) duration=$2; shift 2 ;;
    *) echo "usage: $0 [-clients N] [-duration D]" >&2; exit 2 ;;
  esac
done

faultplan='seed=3,panic=0.03,shards=0'

workdir=$(mktemp -d)
log="$workdir/harassd.log"
cleanup() {
  [[ -n "${pid:-}" ]] && kill "$pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build harassd + loadgen"
go build -o "$workdir/harassd" ./cmd/harassd
go build -o "$workdir/loadgen" ./cmd/loadgen

# start_harassd LOGFILE [extra flags...] — starts a server, waits for
# readiness, and sets $pid and $addr.
start_harassd() {
  local logfile=$1; shift
  "$workdir/harassd" -addr 127.0.0.1:0 -scale quick -shards 4 "$@" 2>"$logfile" &
  pid=$!
  addr=""
  for _ in $(seq 1 150); do
    addr=$(sed -n 's|.*listening on http://||p' "$logfile")
    [[ -n "$addr" ]] && break
    kill -0 "$pid" 2>/dev/null || { cat "$logfile" >&2; echo "harassd died during startup" >&2; exit 1; }
    sleep 0.2
  done
  [[ -n "$addr" ]] || { cat "$logfile" >&2; echo "harassd never reported an address" >&2; exit 1; }
  for _ in $(seq 1 50); do
    curl -sf "http://$addr/readyz" >/dev/null && break
    sleep 0.1
  done
}

# stop_harassd LOGFILE — SIGTERM and assert a clean drain.
stop_harassd() {
  local logfile=$1
  kill -TERM "$pid"
  local rc=0
  wait "$pid" || rc=$?
  pid=""
  if [[ $rc -ne 0 ]]; then
    cat "$logfile" >&2
    echo "harassd exited $rc after SIGTERM (want 0)" >&2
    exit 1
  fi
  grep -q "drained cleanly" "$logfile" || { cat "$logfile" >&2; echo "missing clean-drain log line" >&2; exit 1; }
}

echo "== start harassd (ephemeral port, quick-scale training)"
start_harassd "$log"
echo "   harassd at $addr (pid $pid)"

echo "== endpoint smoke"
# Capture each response before grepping: `curl | grep -q` races grep's
# early exit against curl's final write (curl exit 23 under pipefail).
body=$(curl -sf -X POST "http://$addr/v1/score" \
  -d '{"id":"s","platform":"discord","text":"everyone mass report his channel"}')
grep -q '"status":"ok"' <<<"$body"
body=$(printf '%s\n%s\n' \
  '{"id":"b1","platform":"gab","text":"dropping her address 99 cedar lane"}' \
  'not json' |
  curl -sf -X POST "http://$addr/v1/score/batch" --data-binary @-)
grep -q '"bad_lines":1' <<<"$body"
body=$(curl -sf "http://$addr/healthz")
grep -q ok <<<"$body"
body=$(curl -sf "http://$addr/metrics")
grep -q serve_requests_total <<<"$body"
grep -q serve_shard_queue_depth <<<"$body"

echo "== healthy load ($clients clients, $duration)"
"$workdir/loadgen" -addr "$addr" -clients "$clients" -duration "$duration" \
  -batch-every 10 -batch-docs 16 -out "$workdir/healthy.json"

echo "== graceful shutdown (SIGTERM)"
stop_harassd "$log"

echo "== start harassd with 1/4 shards continuously failing ($faultplan)"
faultlog="$workdir/harassd_faulted.log"
start_harassd "$faultlog" -chaos "$faultplan"
echo "   harassd at $addr (pid $pid)"

echo "== faulted load ($clients clients, $duration)"
"$workdir/loadgen" -addr "$addr" -clients "$clients" -duration "$duration" \
  -batch-every 10 -batch-docs 16 -out "$workdir/faulted.json"

echo "== graceful shutdown under chaos (SIGTERM)"
stop_harassd "$faultlog"

# Compose the two phases into one JSON document.
{
  printf '{\n"healthy": '
  cat "$workdir/healthy.json"
  printf ',\n"faulted": '
  cat "$workdir/faulted.json"
  printf '}\n'
} > BENCH_serve.json

echo "OK — BENCH_serve.json written (healthy + faulted)"
