#!/usr/bin/env bash
# Serving benchmark and lifecycle smoke: builds harassd and loadgen,
# starts harassd on an ephemeral port (training quick-scale classifiers
# at startup), drives it with concurrent clients, curl-smokes every
# endpoint, then SIGTERMs mid-idle and asserts a clean drain (exit 0).
#
# Four load phases land in BENCH_serve.json at the repo root:
#
#   healthy — the full shard fleet serving normally;
#   faulted — the same fleet with 1 of 4 shards continuously failing
#             under a seeded chaos plan, measuring the throughput and
#             p99 cost of riding through a persistent shard incident;
#   swap    — a -registry fleet hot-swapped to a retrained generation
#             mid-run, with the swap latency (swap_latency_ns) reported
#             from the admin response;
#   shadow  — the same fleet shadow-scoring a candidate generation on a
#             shadow_rate sample of live traffic, measuring the rps
#             cost of divergence measurement (gated ≤ 10% in check.sh).
#
# With -gate (how check.sh runs it) two regression gates must hold:
#
#   * healthy throughput ≥ 95% of the committed pre-lifecycle baseline
#     (the Backend→Model handle refactor may not cost steady-state
#     throughput);
#   * shadow throughput ≥ 90% of the swap phase's (the same fleet and
#     traffic shape with shadowing off) — shadow scoring may cost at
#     most 10% rps.
#
# Usage: scripts/bench_serve.sh [-clients N] [-duration D] [-gate]
set -euo pipefail
cd "$(dirname "$0")/.."

# The healthy-phase throughput of the pre-lifecycle serving layer
# (fixed Backend, no swap indirection) re-measured on the CI machine
# when the model-lifecycle gate was introduced. Same clients, same
# duration, same traffic mix as the healthy phase below.
baseline_rps=1624.6

clients=64
duration=5s
gate=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    -clients)  clients=$2; shift 2 ;;
    -duration) duration=$2; shift 2 ;;
    -gate)     gate=1; shift ;;
    *) echo "usage: $0 [-clients N] [-duration D] [-gate]" >&2; exit 2 ;;
  esac
done

faultplan='seed=3,panic=0.03,shards=0'

workdir=$(mktemp -d)
log="$workdir/harassd.log"
cleanup() {
  [[ -n "${pid:-}" ]] && kill "$pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build harassd + loadgen"
go build -o "$workdir/harassd" ./cmd/harassd
go build -o "$workdir/loadgen" ./cmd/loadgen

# start_harassd LOGFILE [extra flags...] — starts a server, waits for
# readiness, and sets $pid and $addr.
start_harassd() {
  local logfile=$1; shift
  "$workdir/harassd" -addr 127.0.0.1:0 -scale quick -shards 4 "$@" 2>"$logfile" &
  pid=$!
  addr=""
  for _ in $(seq 1 150); do
    addr=$(sed -n 's|.*listening on http://||p' "$logfile")
    [[ -n "$addr" ]] && break
    kill -0 "$pid" 2>/dev/null || { cat "$logfile" >&2; echo "harassd died during startup" >&2; exit 1; }
    sleep 0.2
  done
  [[ -n "$addr" ]] || { cat "$logfile" >&2; echo "harassd never reported an address" >&2; exit 1; }
  for _ in $(seq 1 50); do
    curl -sf "http://$addr/readyz" >/dev/null && break
    sleep 0.1
  done
}

# stop_harassd LOGFILE — SIGTERM and assert a clean drain.
stop_harassd() {
  local logfile=$1
  kill -TERM "$pid"
  local rc=0
  wait "$pid" || rc=$?
  pid=""
  if [[ $rc -ne 0 ]]; then
    cat "$logfile" >&2
    echo "harassd exited $rc after SIGTERM (want 0)" >&2
    exit 1
  fi
  grep -q "drained cleanly" "$logfile" || { cat "$logfile" >&2; echo "missing clean-drain log line" >&2; exit 1; }
}

echo "== start harassd (ephemeral port, quick-scale training)"
start_harassd "$log"
echo "   harassd at $addr (pid $pid)"

echo "== endpoint smoke"
# Capture each response before grepping: `curl | grep -q` races grep's
# early exit against curl's final write (curl exit 23 under pipefail).
body=$(curl -sf -X POST "http://$addr/v1/score" \
  -d '{"id":"s","platform":"discord","text":"everyone mass report his channel"}')
grep -q '"status":"ok"' <<<"$body"
body=$(printf '%s\n%s\n' \
  '{"id":"b1","platform":"gab","text":"dropping her address 99 cedar lane"}' \
  'not json' |
  curl -sf -X POST "http://$addr/v1/score/batch" --data-binary @-)
grep -q '"bad_lines":1' <<<"$body"
body=$(curl -sf "http://$addr/healthz")
grep -q ok <<<"$body"
body=$(curl -sf "http://$addr/metrics")
grep -q serve_requests_total <<<"$body"
grep -q serve_shard_queue_depth <<<"$body"

echo "== healthy load ($clients clients, $duration)"
"$workdir/loadgen" -addr "$addr" -clients "$clients" -duration "$duration" \
  -batch-every 10 -batch-docs 16 -out "$workdir/healthy.json"

echo "== graceful shutdown (SIGTERM)"
stop_harassd "$log"

echo "== start harassd with 1/4 shards continuously failing ($faultplan)"
faultlog="$workdir/harassd_faulted.log"
start_harassd "$faultlog" -chaos "$faultplan"
echo "   harassd at $addr (pid $pid)"

echo "== faulted load ($clients clients, $duration)"
"$workdir/loadgen" -addr "$addr" -clients "$clients" -duration "$duration" \
  -batch-every 10 -batch-docs 16 -out "$workdir/faulted.json"

echo "== graceful shutdown under chaos (SIGTERM)"
stop_harassd "$faultlog"

shadow_rate=0.25

echo "== start harassd -registry (lifecycle phases: swap latency + shadow overhead)"
lclog="$workdir/harassd_lifecycle.log"
start_harassd "$lclog" -registry "$workdir/registry"
echo "   harassd at $addr (pid $pid)"

echo "== commit generation 2 (feedback + retrain)"
fb='['
for i in $(seq 0 15); do
  [[ $i -gt 0 ]] && fb+=','
  fb+="{\"id\":\"benchfb-$i\",\"platform\":\"boards\",\"text\":\"keep reporting account $i until it is gone\",\"task\":\"cth\",\"label\":true}"
done
fb+=']'
curl -sf -X POST "http://$addr/v1/feedback" -d "$fb" >/dev/null
body=$(curl -sf -X POST "http://$addr/v1/admin/retrain" -d '{}')
grep -q '"generation": *2' <<<"$body" || { echo "retrain did not commit generation 2: $body" >&2; exit 1; }
curl -sf -X POST "http://$addr/v1/admin/shadow" -d '{"clear":true}' >/dev/null

echo "== swap load ($clients clients, $duration; hot-swap to generation 2 mid-run)"
"$workdir/loadgen" -addr "$addr" -clients "$clients" -duration "$duration" \
  -fail-on-errors -out "$workdir/swap.json" &
lgpid=$!
sleep 2
swapbody=$(curl -sf -X POST "http://$addr/v1/admin/swap" -d '{"generation":2}')
swap_ns=$(sed -n 's/.*"swap_ns": *\([0-9][0-9]*\).*/\1/p' <<<"$swapbody")
wait "$lgpid"
[[ -n "$swap_ns" ]] || { echo "no swap_ns in admin response: $swapbody" >&2; exit 1; }
echo "   fleet rotated onto generation 2 in ${swap_ns}ns"

echo "== shadow load ($clients clients, $duration; generation 1 shadowing at rate $shadow_rate)"
curl -sf -X POST "http://$addr/v1/admin/shadow" \
  -d "{\"generation\":1,\"rate\":$shadow_rate}" >/dev/null
"$workdir/loadgen" -addr "$addr" -clients "$clients" -duration "$duration" \
  -fail-on-errors -out "$workdir/shadow.json"

echo "== graceful shutdown of the lifecycle fleet (SIGTERM)"
stop_harassd "$lclog"

# Compose the phases into one JSON document.
{
  printf '{\n"healthy": '
  cat "$workdir/healthy.json"
  printf ',\n"faulted": '
  cat "$workdir/faulted.json"
  printf ',\n"swap": '
  cat "$workdir/swap.json"
  printf ',\n"shadow": '
  cat "$workdir/shadow.json"
  printf ',\n"swap_latency_ns": %s,\n"shadow_rate": %s\n}\n' "$swap_ns" "$shadow_rate"
} > BENCH_serve.json

if [[ $gate -eq 1 ]]; then
  rps() { sed -n 's/.*"throughput_rps": \([0-9.]*\).*/\1/p' "$1"; }
  healthy_rps=$(rps "$workdir/healthy.json")
  swap_rps=$(rps "$workdir/swap.json")
  shadow_rps=$(rps "$workdir/shadow.json")
  echo "== lifecycle gates (healthy $healthy_rps vs baseline $baseline_rps; shadow $shadow_rps vs swap $swap_rps)"
  awk -v h="$healthy_rps" -v b="$baseline_rps" 'BEGIN { exit !(h >= 0.95 * b) }' || {
    echo "GATE FAILED: healthy throughput $healthy_rps rps < 95% of pre-lifecycle baseline $baseline_rps rps" >&2
    exit 1
  }
  awk -v s="$shadow_rps" -v w="$swap_rps" 'BEGIN { exit !(s >= 0.90 * w) }' || {
    echo "GATE FAILED: shadow throughput $shadow_rps rps < 90% of no-shadow $swap_rps rps (overhead > 10%)" >&2
    exit 1
  }
fi

echo "OK — BENCH_serve.json written (healthy + faulted + swap + shadow)"
