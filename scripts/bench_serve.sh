#!/usr/bin/env bash
# Serving benchmark and lifecycle smoke: builds harassd and loadgen,
# starts harassd on an ephemeral port (training quick-scale classifiers
# at startup), drives it with concurrent clients, curl-smokes every
# endpoint, then SIGTERMs mid-idle and asserts a clean drain (exit 0).
# Throughput and latency percentiles land in BENCH_serve.json at the
# repo root.
#
# Usage: scripts/bench_serve.sh [-clients N] [-duration D]
set -euo pipefail
cd "$(dirname "$0")/.."

clients=64
duration=5s
while [[ $# -gt 0 ]]; do
  case "$1" in
    -clients)  clients=$2; shift 2 ;;
    -duration) duration=$2; shift 2 ;;
    *) echo "usage: $0 [-clients N] [-duration D]" >&2; exit 2 ;;
  esac
done

workdir=$(mktemp -d)
log="$workdir/harassd.log"
cleanup() {
  [[ -n "${pid:-}" ]] && kill "$pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build harassd + loadgen"
go build -o "$workdir/harassd" ./cmd/harassd
go build -o "$workdir/loadgen" ./cmd/loadgen

echo "== start harassd (ephemeral port, quick-scale training)"
"$workdir/harassd" -addr 127.0.0.1:0 -scale quick 2>"$log" &
pid=$!

addr=""
for _ in $(seq 1 150); do
  addr=$(sed -n 's|.*listening on http://||p' "$log")
  [[ -n "$addr" ]] && break
  kill -0 "$pid" 2>/dev/null || { cat "$log" >&2; echo "harassd died during startup" >&2; exit 1; }
  sleep 0.2
done
[[ -n "$addr" ]] || { cat "$log" >&2; echo "harassd never reported an address" >&2; exit 1; }
echo "   harassd at $addr (pid $pid)"

for _ in $(seq 1 50); do
  curl -sf "http://$addr/readyz" >/dev/null && break
  sleep 0.1
done

echo "== endpoint smoke"
curl -sf -X POST "http://$addr/v1/score" \
  -d '{"id":"s","platform":"discord","text":"everyone mass report his channel"}' | grep -q '"status":"ok"'
printf '%s\n%s\n' \
  '{"id":"b1","platform":"gab","text":"dropping her address 99 cedar lane"}' \
  'not json' |
  curl -sf -X POST "http://$addr/v1/score/batch" --data-binary @- |
  grep -q '"bad_lines":1'
curl -sf "http://$addr/healthz" | grep -q ok
curl -sf "http://$addr/metrics" | grep -q serve_requests_total

echo "== loadgen ($clients clients, $duration)"
"$workdir/loadgen" -addr "$addr" -clients "$clients" -duration "$duration" \
  -batch-every 10 -batch-docs 16 -out BENCH_serve.json

echo "== graceful shutdown (SIGTERM)"
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
if [[ $rc -ne 0 ]]; then
  cat "$log" >&2
  echo "harassd exited $rc after SIGTERM (want 0)" >&2
  exit 1
fi
grep -q "drained cleanly" "$log" || { cat "$log" >&2; echo "missing clean-drain log line" >&2; exit 1; }

echo "OK — BENCH_serve.json written"
