#!/usr/bin/env bash
# Hot-swap certification in two layers:
#
#   1. In-process, under the race detector: the serve package's swap
#      storm (seeded chaos plan, alternating SwapModel calls during
#      320 concurrent requests) asserts zero lost requests and zero
#      torn reads — every response's scores equal the golden function
#      of the generation stamped on it, for both generations — plus
#      exactly-once swap accounting under racing swap calls.
#
#   2. End to end, against a live harassd -registry: boot trains and
#      commits generation 1, feedback + /v1/admin/retrain commits
#      generation 2, and a swap storm alternates the fleet between the
#      two generations over /v1/admin/swap while loadgen drives a
#      fixed 320-request budget with -fail-on-errors. The run must
#      lose zero requests, be served by both generations, observe at
#      least one transition mid-flight, and still drain cleanly on
#      SIGTERM.
#
# Usage: scripts/chaos_swap.sh [-clients N] [-requests N]
set -euo pipefail
cd "$(dirname "$0")/.."

clients=8
requests=320
while [[ $# -gt 0 ]]; do
  case "$1" in
    -clients)  clients=$2; shift 2 ;;
    -requests) requests=$2; shift 2 ;;
    *) echo "usage: $0 [-clients N] [-requests N]" >&2; exit 2 ;;
  esac
done

echo "== swap storm under -race (in-process golden certification)"
go test -race -count=1 \
  -run 'TestHotSwapStormNoLossNoTornReads|TestSwapModelIdempotentUnderConcurrency' \
  ./internal/serve/

workdir=$(mktemp -d)
log="$workdir/harassd.log"
cleanup() {
  [[ -n "${stormpid:-}" ]] && kill "$stormpid" 2>/dev/null || true
  [[ -n "${pid:-}" ]] && kill "$pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build harassd + loadgen"
go build -o "$workdir/harassd" ./cmd/harassd
go build -o "$workdir/loadgen" ./cmd/loadgen

echo "== start harassd -registry (trains + commits generation 1)"
"$workdir/harassd" -addr 127.0.0.1:0 -scale quick -shards 4 \
  -registry "$workdir/registry" 2>"$log" &
pid=$!

addr=""
for _ in $(seq 1 150); do
  addr=$(sed -n 's|.*listening on http://||p' "$log")
  [[ -n "$addr" ]] && break
  kill -0 "$pid" 2>/dev/null || { cat "$log" >&2; echo "harassd died during startup" >&2; exit 1; }
  sleep 0.2
done
[[ -n "$addr" ]] || { cat "$log" >&2; echo "harassd never reported an address" >&2; exit 1; }
echo "   harassd at $addr (pid $pid)"

for _ in $(seq 1 50); do
  curl -sf "http://$addr/readyz" >/dev/null && break
  sleep 0.1
done

echo "== commit generation 2 (feedback + retrain)"
fb='['
for i in $(seq 0 15); do
  [[ $i -gt 0 ]] && fb+=','
  fb+="{\"id\":\"swapfb-$i\",\"platform\":\"boards\",\"text\":\"keep reporting account $i until it is gone\",\"task\":\"cth\",\"label\":true}"
done
fb+=']'
curl -sf -X POST "http://$addr/v1/feedback" -d "$fb" >/dev/null
body=$(curl -sf -X POST "http://$addr/v1/admin/retrain" -d '{}')
grep -q '"generation": *2' <<<"$body" || { echo "retrain did not commit generation 2: $body" >&2; exit 1; }
# The storm exercises swaps, not shadowing: stop the candidate shadow
# so every request below is pure serving-path traffic.
curl -sf -X POST "http://$addr/v1/admin/shadow" -d '{"clear":true}' >/dev/null

echo "== swap storm during a $requests-request load ($clients clients)"
report="$workdir/swap_report.json"
(
  gen=2
  while [[ ! -f "$workdir/.done" ]]; do
    curl -sf -X POST "http://$addr/v1/admin/swap" -d "{\"generation\":$gen}" >/dev/null 2>&1 || true
    if [[ $gen -eq 2 ]]; then gen=1; else gen=2; fi
    sleep 0.05
  done
) &
stormpid=$!

"$workdir/loadgen" -addr "$addr" -clients "$clients" -duration 60s -requests "$requests" \
  -fail-on-errors -out "$report"
touch "$workdir/.done"
wait "$stormpid" 2>/dev/null || true
stormpid=""

field() { sed -n "s/.*\"$1\": \([0-9][0-9]*\).*/\1/p" "$report" | head -1; }

reqs=$(field requests)
ok=$(field ok)
errors=$(field errors)
shed429=$(field shed_429)
shed503=$(field shed_503)
transitions=$(field generation_transitions)

[[ "$errors" == "0" ]] || { echo "swap storm lost $errors requests (want 0)" >&2; exit 1; }
[[ $((ok + shed429 + shed503)) -eq "$reqs" ]] || {
  echo "request accounting broken: ok=$ok shed429=$shed429 shed503=$shed503 != requests=$reqs" >&2; exit 1; }
[[ "$ok" -gt 0 ]] || { echo "swap storm scored no documents" >&2; exit 1; }
# model_generations is a multi-line indented array: both generations
# must appear inside it.
genlist=$(sed -n '/"model_generations": \[/,/\]/p' "$report")
grep -q '^ *1,\?$' <<<"$genlist" && grep -q '^ *2,\?$' <<<"$genlist" || {
  echo "run not served by both generations:" >&2; cat "$report" >&2; exit 1; }
[[ "$transitions" -ge 1 ]] || { echo "no generation transition observed mid-run" >&2; cat "$report" >&2; exit 1; }

echo "   certified: $reqs requests, $ok scored, 0 lost, served by gens 1+2, $transitions transitions"

echo "== graceful shutdown after the storm (SIGTERM)"
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
if [[ $rc -ne 0 ]]; then
  cat "$log" >&2
  echo "harassd exited $rc after SIGTERM (want 0)" >&2
  exit 1
fi
grep -q "drained cleanly" "$log" || { cat "$log" >&2; echo "missing clean-drain log line" >&2; exit 1; }

echo "OK — hot-swap certified: no request lost, no torn read, clean drain"
