#!/usr/bin/env bash
# Repository verification: build, vet, full test suite, and the
# concurrent runtime's tests under the race detector.
#
# Usage: scripts/check.sh [-fast]
#   -fast  skip the full (slow) test suite; build + vet + race only
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "-fast" ]] && fast=1

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

if [[ $fast -eq 0 ]]; then
  echo "== go test ./..."
  go test ./...
fi

# The concurrent runtime (worker pool, chaos harness, streaming
# scoring) must be race-clean, not just correct.
echo "== go test -race ./internal/resilience/... ./internal/core/..."
go test -race ./internal/resilience/... ./internal/core/...

echo "OK"
