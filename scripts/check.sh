#!/usr/bin/env bash
# Repository verification: build, vet, full test suite, and the
# concurrent runtime's tests under the race detector.
#
# Usage: scripts/check.sh [-fast]
#   -fast  skip the full (slow) test suite; build + vet + race only
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "-fast" ]] && fast=1

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

if [[ $fast -eq 0 ]]; then
  echo "== go test ./..."
  go test ./...
fi

# The concurrent runtime (worker pool, chaos harness, streaming
# scoring), the metrics core shared across its workers, the HTTP
# serving layer coalescing requests onto that runtime, the corpus
# store (concurrent segment reads under Scan/Lookup, crash-recovery
# reopen), and the model lifecycle (registry commits racing opens,
# hot-swaps racing traffic) must be race-clean, not just correct.
echo "== go test -race ./internal/resilience/... ./internal/core/... ./internal/obs/... ./internal/serve/... ./internal/corpus/... ./internal/registry/... ./internal/lifecycle/..."
go test -race ./internal/resilience/... ./internal/core/... ./internal/obs/... ./internal/serve/... ./internal/corpus/... ./internal/registry/... ./internal/lifecycle/...

# Parallel-scan race certification: scans at 16 workers racing a live
# appender, and point reads racing Close, repeated under the race
# detector — the committed-extent bounding and reader-refcount
# (mapping lifetime) invariants of the store's mmap read path.
echo "== store parallel-scan race step"
go test -race -count=2 -run 'TestScanParallelWhileAppend|TestScanWhileAppend|TestDocConcurrentWithClose' ./internal/corpus/store/

# Allocation-regression gates: the scoring hot path (tokenize,
# featurize, PII clean path, pooled detector scoring) and the obs
# metric handles it records into must stay allocation-free. These run
# under the race detector above too, but the race detector changes the
# allocator, so assert them in a plain run.
echo "== alloc-regression tests"
go test -run 'Allocs' ./internal/tokenize/ ./internal/features/ ./internal/pii/ ./internal/core/ ./internal/obs/

if [[ $fast -eq 0 ]]; then
  # Differential fuzz smoke: the one-pass PII engine must stay
  # byte-identical to the legacy regex cascade (its in-tree oracle).
  # A short guided run on top of the committed corpus catches gate or
  # automaton soundness bugs before they need a long campaign.
  echo "== pii differential fuzz smoke (-fuzztime=10s)"
  go test -run '^$' -fuzz '^FuzzExtractPrefilterEquivalence$' -fuzztime 10s ./internal/pii/

  # Corpus-store differential fuzz smokes: the segment record decoder
  # must reject every non-canonical framing and round-trip every
  # accepted payload byte-identically, and the posting bitmaps must
  # agree with a naive in-memory oracle. One -fuzz target per
  # invocation (go test rejects multi-target fuzz runs).
  echo "== store fuzz smokes (-fuzztime=10s each)"
  go test -run '^$' -fuzz '^FuzzSegmentDecode$' -fuzztime 10s ./internal/corpus/store/
  go test -run '^$' -fuzz '^FuzzPostingIterator$' -fuzztime 10s ./internal/corpus/store/

  # Registry manifest fuzz smoke: every accepted manifest must
  # re-encode to its canonical byte form (decode∘encode identity, the
  # FuzzSegmentDecode contract for the model registry's root state).
  echo "== registry manifest fuzz smoke (-fuzztime=10s)"
  go test -run '^$' -fuzz '^FuzzRegistryManifest$' -fuzztime 10s ./internal/registry/

  # PII perf gate: pii/dense-dox must hold at least 3x over the
  # regex-cascade figure it replaced (58581.56 ns/op) and stay
  # allocation-free; catches engine performance regressions without
  # training the full pipeline.
  echo "== pii perf gate (benchscore -pii-only -gate-pii)"
  go run ./cmd/benchscore -pii-only -gate-pii
fi

if [[ $fast -eq 0 ]]; then
  # Benchmark smoke: every benchmark must still run (one iteration, no
  # timing claims) so bench rot is caught here, not at release time.
  echo "== benchmark smoke (-benchtime=1x)"
  go test -run '^$' -bench . -benchtime 1x ./... > /dev/null

  # Pipeline timing: quick-scale `-experiment all` with derived
  # artifacts recomputed per caller (pre-graph monolith shape) vs the
  # memoized artifact graph; wall times and per-stage cache-hit counts
  # land in BENCH_pipeline.json.
  echo "== pipeline benchmark (BENCH_pipeline.json)"
  scripts/bench_pipeline.sh

  # Serving smoke + benchmark: harassd on an ephemeral port, endpoint
  # curls, concurrent load in healthy / faulted (1 of 4 shards
  # continuously failing) / hot-swap / shadow-scoring phases, and
  # SIGTERMs that must drain to exit 0; all four phases' throughput and
  # latency percentiles land in BENCH_serve.json, and -gate enforces
  # the lifecycle costs: healthy steady-state within 5% of the
  # pre-lifecycle baseline, shadow-scoring overhead at most 10% rps.
  echo "== serving benchmark + lifecycle gates (BENCH_serve.json)"
  scripts/bench_serve.sh -gate

  # Chaos certification against a live harassd: a deterministic seeded
  # fault plan (shard panics, stalls, latency spikes) must lose zero
  # admitted requests, restart the faulted shard, and still drain
  # cleanly on SIGTERM.
  echo "== chaos-serve certification"
  scripts/chaos_serve.sh

  # Hot-swap chaos certification: the in-process swap storm under
  # -race (zero lost requests, every response scored wholly by one
  # model generation — golden equality against both pure-generation
  # runs), then a live harassd -registry swap storm under a fixed
  # 320-request load that must lose nothing, be served by both
  # generations, and drain cleanly.
  echo "== hot-swap chaos certification"
  scripts/chaos_swap.sh

  # Corpus-store benchmark + gates: scan/lookup/append throughput lands
  # in BENCH_store.json; ScoreStream fed from a store Scan must retain
  # >= 0.9x the throughput of the same documents already in memory (the
  # store may cost at most 10% on the hot path), and ScanParallel must
  # reach >= 2x the sequential scan on machines with >= 4 cores (the
  # parallel gate skips loudly on smaller machines).
  echo "== store benchmark + stream/parallel gates (BENCH_store.json)"
  scripts/bench_store.sh -gate
fi

echo "OK"
