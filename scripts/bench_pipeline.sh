#!/usr/bin/env bash
# Times `harassrepro -scale quick -experiment all` before/after the
# artifact-graph memoization (the "before" is the graph's NoMemo mode,
# which recomputes derived artifacts per caller like the old monolith)
# and records wall times plus per-stage cache-hit counts in
# BENCH_pipeline.json at the repo root.
#
# Usage: scripts/bench_pipeline.sh [-seed N]
set -euo pipefail
cd "$(dirname "$0")/.."

go run ./cmd/benchpipeline -out BENCH_pipeline.json "$@"
