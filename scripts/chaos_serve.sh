#!/usr/bin/env bash
# Chaos certification against a live harassd: start the service with a
# deterministic seeded serve-layer fault plan (shard panics, hard
# stalls, latency spikes on one shard), drive it with concurrent
# clients, and assert the no-loss contract end to end:
#
#   - every request gets a terminal answer (loadgen -fail-on-errors:
#     transport errors and unexpected statuses are zero; 429/503 shed
#     with Retry-After are the service behaving as designed);
#   - the chaos actually bit (shard generations restarted);
#   - the self-healing layer re-homed in-flight documents (redispatch
#     counters are visible in the scraped summary);
#   - SIGTERM still drains cleanly to exit 0 afterwards.
#
# Usage: scripts/chaos_serve.sh [-clients N] [-duration D]
set -euo pipefail
cd "$(dirname "$0")/.."

clients=32
duration=5s
while [[ $# -gt 0 ]]; do
  case "$1" in
    -clients)  clients=$2; shift 2 ;;
    -duration) duration=$2; shift 2 ;;
    *) echo "usage: $0 [-clients N] [-duration D]" >&2; exit 2 ;;
  esac
done

plan='seed=7,panic=0.05,stall=0.01,spike=0.08,spike-ms=5,shards=0,max-faults=60'

workdir=$(mktemp -d)
log="$workdir/harassd.log"
cleanup() {
  [[ -n "${pid:-}" ]] && kill "$pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build harassd + loadgen"
go build -o "$workdir/harassd" ./cmd/harassd
go build -o "$workdir/loadgen" ./cmd/loadgen

echo "== start harassd with chaos plan ($plan)"
"$workdir/harassd" -addr 127.0.0.1:0 -scale quick -shards 4 -chaos "$plan" 2>"$log" &
pid=$!

addr=""
for _ in $(seq 1 150); do
  addr=$(sed -n 's|.*listening on http://||p' "$log")
  [[ -n "$addr" ]] && break
  kill -0 "$pid" 2>/dev/null || { cat "$log" >&2; echo "harassd died during startup" >&2; exit 1; }
  sleep 0.2
done
[[ -n "$addr" ]] || { cat "$log" >&2; echo "harassd never reported an address" >&2; exit 1; }
echo "   harassd at $addr (pid $pid)"

for _ in $(seq 1 50); do
  curl -sf "http://$addr/readyz" >/dev/null && break
  sleep 0.1
done

echo "== chaos load ($clients clients, $duration)"
report="$workdir/chaos_report.json"
"$workdir/loadgen" -addr "$addr" -clients "$clients" -duration "$duration" \
  -batch-every 10 -batch-docs 8 -fail-on-errors -out "$report"

field() { sed -n "s/.*\"$1\": \([0-9][0-9]*\).*/\1/p" "$report" | head -1; }

errors=$(field errors)
restarts=$(field shard_restarts)
redisp=$(field redispatched_docs)
redisp_failed=$(field redispatch_failed_docs)
ok=$(field ok)

[[ "$errors" == "0" ]] || { echo "chaos run had $errors errored requests (want 0: nothing lost)" >&2; exit 1; }
[[ "$ok" -gt 0 ]] || { echo "chaos run scored no documents" >&2; exit 1; }
if [[ "$restarts" -eq 0 ]]; then
  echo "chaos never bit: 0 shard restarts under plan $plan" >&2
  exit 1
fi
echo "   certified: $ok scored, 0 lost, $restarts shard restarts," \
     "$redisp docs re-homed, $redisp_failed answered terminal 503"

echo "== graceful shutdown under chaos residue (SIGTERM)"
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
if [[ $rc -ne 0 ]]; then
  cat "$log" >&2
  echo "harassd exited $rc after SIGTERM (want 0)" >&2
  exit 1
fi
grep -q "drained cleanly" "$log" || { cat "$log" >&2; echo "missing clean-drain log line" >&2; exit 1; }

echo "OK — chaos-certified: no admitted request lost"
