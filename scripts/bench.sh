#!/usr/bin/env bash
# Scoring hot-path benchmark harness: trains the quick-scale pipeline
# once, measures steady-state tokenize/featurize/pii plus the
# end-to-end streaming ScoreStream workload, and writes
# BENCH_scoring.json (ns/doc, B/op, allocs/op, docs/sec, speedup vs the
# committed pre-optimisation baseline).
#
# Usage: scripts/bench.sh [-out FILE]
set -euo pipefail
cd "$(dirname "$0")/.."

go run ./cmd/benchscore "$@"
